"""Differential tests: the vectorized fast path vs the scalar reference.

The fast path (``repro.codecs.fastpath``) must match the scalar
implementation on every valid stream:

* the *entropy stage* produces **byte-identical** streams given identical
  coefficient planes (``test_scan_bodies_identical_per_scan``), and
  decoding produces **identical coefficient planes** at every scan prefix;
* the *forward transform* (``repro.codecs.encodepath``, PR 10) carries a
  documented ±1-quant-step error budget instead of byte identity, so
  whole-stream comparisons across the toggle go through
  ``_assert_stream_parity`` (the full forward-path differential suite
  lives in ``tests/test_codecs_encodepath.py``).

A perf smoke test pins the ordering (fast must beat scalar) so accidental
de-vectorization fails CI.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import config
from repro.codecs.baseline import BaselineCodec
from repro.codecs.fastpath import decode_scan_body_fast, encode_scan_body_fast
from repro.codecs.image import ImageBuffer
from repro.codecs.markers import (
    SUBSAMPLING_420,
    SUBSAMPLING_NONE,
    find_scan_segments,
)
from repro.codecs.progressive import (
    ProgressiveCodec,
    ScanScript,
    decode_coefficients,
    empty_coefficients,
    encode_coefficients,
    image_to_coefficients,
    parse_frame_header,
)
from repro.codecs.rle import (
    ac_band_symbols,
    ac_symbol_arrays,
    dc_symbol_arrays,
    dc_symbols,
    mixed_symbol_arrays,
)
def make_structured_image(size: int = 48, seed: int = 0, color: bool = True) -> ImageBuffer:
    """A deterministic image with both low- and high-frequency content.

    Mirrors the helper in ``tests/conftest.py``; duplicated here because
    importing a ``conftest`` module by name is ambiguous when pytest runs
    the whole repo (``benchmarks/`` ships its own conftest).
    """
    rng = np.random.default_rng(seed)
    coordinates = np.linspace(0, 1, size)
    xx, yy = np.meshgrid(coordinates, coordinates)
    base = 128 + 80 * np.sin(4 * np.pi * xx) * np.cos(2 * np.pi * yy)
    texture = 30 * np.sin(24 * np.pi * (xx + 0.3 * yy))
    noise = rng.normal(0, 4, size=(size, size))
    luma = base + texture + noise
    if not color:
        return ImageBuffer.from_array(luma)
    rgb = np.stack([luma, 0.7 * luma + 40.0, 220.0 - 0.5 * luma], axis=-1)
    return ImageBuffer.from_array(rgb)


def _random_image(seed: int, size: int, color: bool) -> ImageBuffer:
    rng = np.random.default_rng(seed)
    shape = (size, size, 3) if color else (size, size)
    return ImageBuffer.from_array(rng.integers(0, 256, shape).astype(np.uint8))


def _encode_both(codec, image: ImageBuffer) -> tuple[bytes, bytes]:
    with config.use_fastpath(False):
        scalar_stream = codec.encode(image)
    with config.use_fastpath(True):
        fast_stream = codec.encode(image)
    return scalar_stream, fast_stream


def _assert_stream_parity(scalar_stream: bytes, fast_stream: bytes) -> None:
    """Whole-stream parity under the forward-path error budget.

    The two encodes may differ in bytes (the float32 forward transform can
    round a coefficient to the adjacent quant step — see
    ``repro.codecs.encodepath``), so compare decoded planes: identical
    geometry, every coefficient within 1 step, mismatches within the
    documented corpus rate (with small-sample slack for single images).
    """
    from repro.codecs.encodepath import MAX_MISMATCH_RATE

    with config.use_fastpath(True):
        scalar_coeffs, _ = decode_coefficients(scalar_stream)
        fast_coeffs, _ = decode_coefficients(fast_stream)
    total = 0
    mismatched = 0
    for scalar_plane, fast_plane in zip(scalar_coeffs.planes, fast_coeffs.planes):
        assert scalar_plane.shape == fast_plane.shape
        delta = np.abs(scalar_plane.astype(np.int64) - fast_plane.astype(np.int64))
        assert int(delta.max(initial=0)) <= 1
        mismatched += int((delta > 0).sum())
        total += delta.size
    assert mismatched <= max(3, int(total * MAX_MISMATCH_RATE))


def _assert_decodes_match(stream: bytes, n_scans: int) -> None:
    for max_scans in range(1, n_scans + 1):
        with config.use_fastpath(False):
            scalar_coeffs, scalar_applied = decode_coefficients(stream, max_scans=max_scans)
        with config.use_fastpath(True):
            fast_coeffs, fast_applied = decode_coefficients(stream, max_scans=max_scans)
        assert scalar_applied == fast_applied
        for scalar_plane, fast_plane in zip(scalar_coeffs.planes, fast_coeffs.planes):
            assert np.array_equal(scalar_plane, fast_plane)


class TestStreamEquivalence:
    """Stream parity (entropy byte-identical, forward within budget) across configurations."""

    @pytest.mark.parametrize("subsampling", [SUBSAMPLING_420, SUBSAMPLING_NONE])
    @pytest.mark.parametrize("quality", [50, 90])
    def test_progressive_color(self, subsampling, quality):
        image = make_structured_image(41, seed=11, color=True)
        codec = ProgressiveCodec(quality=quality, subsampling=subsampling)
        scalar_stream, fast_stream = _encode_both(codec, image)
        _assert_stream_parity(scalar_stream, fast_stream)
        _assert_decodes_match(scalar_stream, codec.n_scans(scalar_stream))

    def test_progressive_grayscale(self):
        image = make_structured_image(40, seed=12, color=False)
        codec = ProgressiveCodec(quality=85)
        scalar_stream, fast_stream = _encode_both(codec, image)
        _assert_stream_parity(scalar_stream, fast_stream)
        _assert_decodes_match(scalar_stream, codec.n_scans(scalar_stream))

    @pytest.mark.parametrize("color", [True, False])
    def test_baseline_sequential(self, color):
        image = make_structured_image(35, seed=13, color=color)
        codec = BaselineCodec(quality=80)
        scalar_stream, fast_stream = _encode_both(codec, image)
        _assert_stream_parity(scalar_stream, fast_stream)
        _assert_decodes_match(scalar_stream, codec.n_scans(scalar_stream))

    def test_random_noise_images(self):
        # Noise maximizes symbol density and exercises long codes/ZRL runs.
        for seed, size, color in [(0, 24, True), (1, 17, True), (2, 32, False)]:
            image = _random_image(seed, size, color)
            codec = ProgressiveCodec(quality=95)
            scalar_stream, fast_stream = _encode_both(codec, image)
            _assert_stream_parity(scalar_stream, fast_stream)
            _assert_decodes_match(scalar_stream, codec.n_scans(scalar_stream))

    def test_all_ten_default_scans_present(self):
        image = make_structured_image(48, seed=14, color=True)
        codec = ProgressiveCodec()
        stream = codec.encode(image)
        assert codec.n_scans(stream) == 10
        _assert_decodes_match(stream, 10)

    def test_scan_bodies_identical_per_scan(self):
        """Scan-level check: each scan body matches segment-for-segment."""
        image = make_structured_image(33, seed=15, color=True)
        coefficients = image_to_coefficients(image, quality=90)
        script = ScanScript.default_for(coefficients.header.n_components)
        with config.use_fastpath(False):
            scalar_stream = encode_coefficients(coefficients, script)
        with config.use_fastpath(True):
            fast_stream = encode_coefficients(coefficients, script)
        scalar_segments = find_scan_segments(scalar_stream)
        fast_segments = find_scan_segments(fast_stream)
        assert len(scalar_segments) == len(fast_segments) == len(script)
        for scalar_segment, fast_segment in zip(scalar_segments, fast_segments):
            assert (
                scalar_stream[scalar_segment.start : scalar_segment.end]
                == fast_stream[fast_segment.start : fast_segment.end]
            )

    def test_fastpath_decodes_scalar_stream_and_vice_versa(self):
        image = make_structured_image(30, seed=16, color=True)
        codec = ProgressiveCodec(quality=75)
        with config.use_fastpath(False):
            stream = codec.encode(image)
        with config.use_fastpath(True):
            fast_image = codec.decode(stream)
        with config.use_fastpath(False):
            scalar_image = codec.decode(stream)
        assert fast_image == scalar_image


class TestVectorizedSymbolArrays:
    """The NumPy RLE coders emit the exact scalar symbol streams."""

    @given(
        st.lists(
            st.lists(st.integers(-300, 300), min_size=9, max_size=9),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_ac_symbol_arrays_match_scalar(self, blocks):
        band = np.array(blocks, dtype=np.int32)
        symbols, bits, n_bits = ac_symbol_arrays(band)
        expected_symbols: list[int] = []
        expected_extras: list[tuple[int, int]] = []
        for block in blocks:
            block_symbols, block_extras = ac_band_symbols(block)
            expected_symbols.extend(block_symbols)
            expected_extras.extend(block_extras)
        assert symbols.tolist() == expected_symbols
        assert list(zip(bits.tolist(), n_bits.tolist())) == expected_extras

    @given(st.lists(st.integers(-2000, 2000), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_dc_symbol_arrays_match_scalar(self, values):
        symbols, bits, n_bits = dc_symbol_arrays(np.array(values, dtype=np.int64))
        expected_symbols, expected_extras = dc_symbols(values)
        assert symbols.tolist() == expected_symbols
        assert list(zip(bits.tolist(), n_bits.tolist())) == expected_extras

    @given(
        st.lists(
            st.lists(st.integers(-200, 200), min_size=64, max_size=64),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_mixed_symbol_arrays_match_scalar(self, blocks):
        plane = np.array(blocks, dtype=np.int32)
        symbols, bits, n_bits = mixed_symbol_arrays(plane, spectral_end=63)
        expected_symbols: list[int] = []
        expected_extras: list[tuple[int, int]] = []
        previous_dc = 0
        for block in blocks:
            diff = block[0] - previous_dc
            previous_dc = block[0]
            dc_syms, dc_extras = dc_symbols([diff])
            expected_symbols.extend(dc_syms)
            expected_extras.extend(dc_extras)
            ac_syms, ac_extras = ac_band_symbols(block[1:])
            expected_symbols.extend(ac_syms)
            expected_extras.extend(ac_extras)
        assert symbols.tolist() == expected_symbols
        assert list(zip(bits.tolist(), n_bits.tolist())) == expected_extras

    def test_zrl_heavy_band(self):
        band = np.zeros((3, 63), dtype=np.int32)
        band[0, 40] = 5        # two ZRLs then a coefficient
        band[1, 62] = -1       # coefficient on the last slot: no EOB
        # block 2 stays all-zero: a single EOB
        symbols, bits, n_bits = ac_symbol_arrays(band)
        expected: list[int] = []
        for block in band:
            block_symbols, _ = ac_band_symbols([int(v) for v in block])
            expected.extend(block_symbols)
        assert symbols.tolist() == expected


class TestPropertyRoundTrip:
    """Property-style: random coefficient planes round-trip bit-identically."""

    @given(st.integers(0, 2**32 - 1), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_random_planes_roundtrip(self, seed, use_420):
        rng = np.random.default_rng(seed)
        image = ImageBuffer.from_array(
            rng.integers(0, 256, (16 + int(rng.integers(0, 17)),) * 2 + (3,)).astype(
                np.uint8
            )
        )
        subsampling = SUBSAMPLING_420 if use_420 else SUBSAMPLING_NONE
        coefficients = image_to_coefficients(image, quality=70, subsampling=subsampling)
        script = ScanScript.default_for(coefficients.header.n_components)
        with config.use_fastpath(False):
            scalar_stream = encode_coefficients(coefficients, script)
        with config.use_fastpath(True):
            fast_stream = encode_coefficients(coefficients, script)
        assert scalar_stream == fast_stream
        with config.use_fastpath(True):
            decoded, _ = decode_coefficients(fast_stream)
        for original_plane, decoded_plane in zip(coefficients.planes, decoded.planes):
            assert np.array_equal(original_plane, decoded_plane)


class TestScanBodyFunctions:
    """Direct checks of the scan-level fast-path entry points."""

    def test_decode_scan_body_fast_single_segment(self):
        image = make_structured_image(25, seed=17, color=True)
        coefficients = image_to_coefficients(image, quality=90)
        script = ScanScript.default_for(3)
        stream = encode_coefficients(coefficients, script)
        header, _ = parse_frame_header(stream)
        segments = find_scan_segments(stream)
        fast_result = empty_coefficients(header)
        for segment in segments:
            decode_scan_body_fast(stream, segment, fast_result)
        for original_plane, decoded_plane in zip(coefficients.planes, fast_result.planes):
            assert np.array_equal(original_plane, decoded_plane)

    def test_encode_scan_body_fast_is_scalar_body(self):
        from repro.codecs.progressive import _encode_scan_body_scalar

        image = make_structured_image(27, seed=18, color=True)
        coefficients = image_to_coefficients(image, quality=90)
        for scan in ScanScript.default_for(3):
            assert encode_scan_body_fast(coefficients, scan) == _encode_scan_body_scalar(
                coefficients, scan
            )

    def test_truncated_scan_payload_raises_documented_errors(self):
        """Deep truncation must raise EOFError/ValueError, never IndexError.

        A heavily truncated DC scan over many blocks decodes garbage through
        the payload, through all the 1-padding, and off the end of the refill
        word list — the guard must convert that into the documented EOFError
        rather than leaking an IndexError.
        """
        from repro.codecs.markers import EOI, write_scan_segment
        from repro.codecs.progressive import split_scans

        image = make_structured_image(128, seed=19, color=True)
        stream = ProgressiveCodec(quality=90).encode(image)
        prefix, _ = split_scans(stream)
        segment = find_scan_segments(stream)[0]  # DC scan, many blocks
        body = stream[segment.payload_start : segment.end]
        for cut in (len(body) - 8, len(body) // 2, 40):
            bad = prefix + write_scan_segment(segment.header, body[:cut]) + EOI
            with pytest.raises((EOFError, ValueError)):
                decode_coefficients(bad)


#: The three decode tiers: scalar reference, single-symbol two-level LUT,
#: and the superscalar pair-LUT path.
_TIERS = (("scalar", False, True), ("single", True, False), ("super", True, True))


def _tier_error_classes(stream: bytes) -> list[str]:
    """Decode ``stream`` on every tier; return each tier's outcome class.

    Outcomes are ``"ok"`` or the raised error's class name.  Only the
    documented classes are caught — anything else (IndexError, TypeError)
    propagates and fails the calling test.
    """
    outcomes = []
    for _, fastpath, superscalar in _TIERS:
        with config.use_fastpath(fastpath), config.use_superscalar(superscalar):
            try:
                decode_coefficients(stream)
                outcomes.append("ok")
            except (EOFError, ValueError) as error:
                outcomes.append(type(error).__name__)
    return outcomes


class TestInvalidStreamFuzz:
    """All three tiers must raise the *same* error class on invalid streams.

    The fast tiers decode the 1-padding as data and classify defects after
    the fact, so their raise sites carry offset-based classification
    (``_invalid_code_error`` / ``_overflow_error`` / ``_scan_defect``) to
    mirror the scalar reference's bit-by-bit semantics.  These tests pin
    that contract for the three documented defect families.
    """

    @staticmethod
    def _stream_and_segments():
        image = make_structured_image(64, seed=3, color=True)
        stream = ProgressiveCodec(quality=90).encode(image)
        return stream, find_scan_segments(stream)

    @staticmethod
    def _rebuild(stream, segments, target_index, new_body):
        from repro.codecs.markers import EOI, write_scan_segment
        from repro.codecs.progressive import split_scans

        prefix, _ = split_scans(stream)
        out = prefix
        for index, segment in enumerate(segments):
            body = (
                new_body
                if index == target_index
                else stream[segment.payload_start : segment.end]
            )
            out += write_scan_segment(segment.header, body)
        return out + EOI

    def test_truncated_mid_symbol_same_error_class(self):
        stream, segments = self._stream_and_segments()
        for index, segment in enumerate(segments):
            body = stream[segment.payload_start : segment.end]
            for cut in {len(body) - 1, len(body) - 3, len(body) // 2, 20}:
                if cut <= 8 or cut >= len(body):
                    continue
                bad = self._rebuild(stream, segments, index, body[:cut])
                outcomes = _tier_error_classes(bad)
                assert outcomes[0] != "ok", f"scan {index} cut {cut} not defective"
                assert outcomes[0] == outcomes[1] == outcomes[2], (
                    f"scan {index} cut {cut}: {dict(zip([t[0] for t in _TIERS], outcomes))}"
                )

    def test_bit_flip_fuzz_same_error_class(self):
        stream, segments = self._stream_and_segments()
        rng = np.random.default_rng(29)
        for index, segment in enumerate(segments):
            body = stream[segment.payload_start : segment.end]
            for _ in range(6):
                position = int(rng.integers(8, len(body)))
                flipped = bytes([body[position] ^ (1 << int(rng.integers(0, 8)))])
                mutated = body[:position] + flipped + body[position + 1 :]
                if b"\xff" in mutated[8:]:
                    mutated = mutated.replace(b"\xff", b"\xfe")
                bad = self._rebuild(stream, segments, index, mutated)
                outcomes = _tier_error_classes(bad)
                assert outcomes[0] == outcomes[1] == outcomes[2], (
                    f"scan {index} flip @{position}: "
                    f"{dict(zip([t[0] for t in _TIERS], outcomes))}"
                )

    def test_garbage_past_padding_ignored_identically(self):
        """Trailing junk past the needed symbols is ignored by every tier."""
        stream, segments = self._stream_and_segments()
        baseline, _ = decode_coefficients(stream)
        rng = np.random.default_rng(31)
        for index, segment in enumerate(segments):
            body = stream[segment.payload_start : segment.end]
            junk = bytes(rng.integers(0, 255, 32, endpoint=True).astype(np.uint8))
            junk = junk.replace(b"\xff", b"\xfe")  # keep marker parsing intact
            padded_stream = self._rebuild(stream, segments, index, body + junk)
            for _, fastpath, superscalar in _TIERS:
                with config.use_fastpath(fastpath), config.use_superscalar(superscalar):
                    decoded, _ = decode_coefficients(padded_stream)
                for expected, actual in zip(baseline.planes, decoded.planes):
                    assert np.array_equal(expected, actual)

    def test_zero_category_nonzero_run_same_error_class(self):
        """A zero-category symbol with a nonzero run errs identically.

        The symbol (never emitted by an encoder) is crafted with a run that
        overflows the band — the scalar reference raises at the symbol
        itself, the fast tiers treat it as a pure zero-run, finish the
        block, and then hit the crafted invalid prefix that follows — and
        every tier must surface ``ValueError``.
        """
        from repro.codecs.bitio import BitWriter
        from repro.codecs.huffman import HuffmanTable

        stream, segments = self._stream_and_segments()
        target = next(
            index
            for index, segment in enumerate(segments)
            if segment.header.spectral_start >= 1
        )
        header = segments[target].header
        band_length = header.spectral_end - header.spectral_start + 1
        # Incomplete canonical code: 00 = EOB, 01 = (run 0, category 1),
        # 10 = the bogus (run 5, category 0) symbol, prefix 11 invalid.
        table = HuffmanTable(code_lengths={0x00: 2, 0x11: 2, 0x50: 2})
        writer = BitWriter()
        for _ in range(band_length - 1):  # coefficients up to the band edge
            table.encode_symbol(0x11, writer)
            writer.write_bits(1, 1)
        table.encode_symbol(0x50, writer)  # run of 5 overflows the band
        for _ in range(8):  # 16 in-payload bits of the invalid 11-prefix
            writer.write_bits(0b11, 2)
            writer.write_bits(0b01, 2)
        payload = writer.getvalue()
        assert b"\xff" not in payload  # must not fabricate a marker
        bad = self._rebuild(stream, segments, target, table.to_bytes() + payload)
        outcomes = _tier_error_classes(bad)
        assert outcomes == ["ValueError", "ValueError", "ValueError"]


class TestToggle:
    def test_use_fastpath_restores_state(self):
        initial = config.fastpath_enabled()
        with config.use_fastpath(not initial):
            assert config.fastpath_enabled() is (not initial)
        assert config.fastpath_enabled() is initial

    def test_set_fastpath(self):
        initial = config.fastpath_enabled()
        try:
            config.set_fastpath(False)
            assert not config.fastpath_enabled()
            config.set_fastpath(True)
            assert config.fastpath_enabled()
        finally:
            config.set_fastpath(initial)

    def test_package_attribute_tracks_config(self):
        import repro.codecs as codecs

        initial = config.fastpath_enabled()
        try:
            config.set_fastpath(False)
            assert codecs.FASTPATH is False
            config.set_fastpath(True)
            assert codecs.FASTPATH is True
        finally:
            config.set_fastpath(initial)


class TestPerformanceSmoke:
    """The LUT fast path must decisively beat the scalar reference.

    Timings compare medians over several trials on the same small fixed
    workload; the fast path is required to win by 1.5x (it wins by ~4-5x in
    practice), so only a genuine de-vectorization can trip this.
    """

    @staticmethod
    def _median_seconds(fn, trials: int = 5) -> float:
        samples = []
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    def test_fastpath_beats_scalar(self):
        # 96px keeps the run in the tens of milliseconds while giving the
        # entropy layer enough symbols that fixed per-scan costs (shared
        # Huffman table construction) don't mask the fast-path advantage.
        image = make_structured_image(96, seed=19, color=True)
        coefficients = image_to_coefficients(image, quality=90)
        script = ScanScript.default_for(coefficients.header.n_components)
        stream = encode_coefficients(coefficients, script)
        decode_coefficients(stream)  # warm LUT/table caches

        def decode_fast():
            with config.use_fastpath(True):
                decode_coefficients(stream)

        def decode_scalar():
            with config.use_fastpath(False):
                decode_coefficients(stream)

        def encode_fast():
            with config.use_fastpath(True):
                encode_coefficients(coefficients, script)

        def encode_scalar():
            with config.use_fastpath(False):
                encode_coefficients(coefficients, script)

        fast_decode = self._median_seconds(decode_fast)
        scalar_decode = self._median_seconds(decode_scalar)
        assert fast_decode * 1.5 < scalar_decode, (
            f"LUT decode ({fast_decode * 1e3:.2f} ms) must beat the scalar "
            f"reference ({scalar_decode * 1e3:.2f} ms) by at least 1.5x"
        )
        fast_encode = self._median_seconds(encode_fast)
        scalar_encode = self._median_seconds(encode_scalar)
        assert fast_encode * 1.5 < scalar_encode, (
            f"vectorized encode ({fast_encode * 1e3:.2f} ms) must beat the scalar "
            f"reference ({scalar_encode * 1e3:.2f} ms) by at least 1.5x"
        )
