"""Tests for the SQLite and LSM key-value stores."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.interface import detect_backend, open_store
from repro.kvstore.lsm_store import LSMStore
from repro.kvstore.sqlite_store import SQLiteStore


def _backends(tmp_path):
    return [
        SQLiteStore(tmp_path / "store.db"),
        LSMStore(tmp_path / "store.lsm"),
    ]


@pytest.fixture(params=["sqlite", "lsm"])
def store(request, tmp_path):
    if request.param == "sqlite":
        with SQLiteStore(tmp_path / "s.db") as opened:
            yield opened
    else:
        with LSMStore(tmp_path / "s.lsm") as opened:
            yield opened


class TestKVStoreContract:
    def test_put_get(self, store):
        store.put(b"a", b"1")
        assert store.get(b"a") == b"1"

    def test_get_missing_returns_none(self, store):
        assert store.get(b"missing") is None

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_delete_missing_is_noop(self, store):
        store.delete(b"never-there")

    def test_contains(self, store):
        store.put(b"x", b"y")
        assert b"x" in store
        assert b"z" not in store

    def test_scan_in_key_order(self, store):
        for key in [b"c", b"a", b"b"]:
            store.put(key, key.upper())
        assert [k for k, _ in store.scan()] == [b"a", b"b", b"c"]

    def test_scan_prefix(self, store):
        store.put(b"record/001", b"x")
        store.put(b"record/002", b"y")
        store.put(b"sample/001", b"z")
        records = list(store.scan(b"record/"))
        assert len(records) == 2
        assert all(key.startswith(b"record/") for key, _ in records)

    def test_len(self, store):
        for i in range(5):
            store.put(f"k{i}".encode(), b"v")
        assert len(store) == 5

    def test_binary_values(self, store):
        payload = bytes(range(256)) * 10
        store.put(b"bin", payload)
        assert store.get(b"bin") == payload

    @given(st.dictionaries(st.binary(min_size=1, max_size=16), st.binary(max_size=64), max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_matches_dict_semantics(self, tmp_path_factory, mapping):
        directory = tmp_path_factory.mktemp("prop")
        for store in _backends(directory):
            with store:
                for key, value in mapping.items():
                    store.put(key, value)
                for key, value in mapping.items():
                    assert store.get(key) == value
                assert dict(store.scan()) == mapping


class TestLSMSpecifics:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "persist.lsm"
        with LSMStore(path) as store:
            store.put(b"k1", b"v1")
            store.put(b"k2", b"v2")
        with LSMStore(path) as store:
            assert store.get(b"k1") == b"v1"
            assert store.get(b"k2") == b"v2"

    def test_wal_replay_without_flush(self, tmp_path):
        path = tmp_path / "wal.lsm"
        store = LSMStore(path)
        store.put(b"unflushed", b"value")
        # Simulate a crash: do not close, just reopen from disk state.
        store._wal_file.flush()
        reopened = LSMStore(path)
        assert reopened.get(b"unflushed") == b"value"
        reopened.close()
        store._wal_file.close()

    def test_memtable_flush_creates_runs(self, tmp_path):
        store = LSMStore(tmp_path / "flush.lsm", memtable_limit_bytes=256)
        for i in range(64):
            store.put(f"key-{i:04d}".encode(), b"x" * 32)
        assert store._runs  # at least one sorted run was written
        for i in range(64):
            assert store.get(f"key-{i:04d}".encode()) == b"x" * 32
        store.close()

    def test_compaction_bounds_run_count(self, tmp_path):
        store = LSMStore(
            tmp_path / "compact.lsm", memtable_limit_bytes=128, max_runs_before_compaction=2
        )
        for i in range(200):
            store.put(f"key-{i:05d}".encode(), b"y" * 16)
        assert len(store._runs) <= 3
        assert store.get(b"key-00150") == b"y" * 16
        store.close()

    def test_tombstones_survive_flush(self, tmp_path):
        store = LSMStore(tmp_path / "tomb.lsm", memtable_limit_bytes=128)
        store.put(b"gone", b"value")
        store.delete(b"gone")
        for i in range(50):
            store.put(f"fill-{i}".encode(), b"z" * 16)
        assert store.get(b"gone") is None
        store.close()

    def test_closed_store_rejects_operations(self, tmp_path):
        store = LSMStore(tmp_path / "closed.lsm")
        store.close()
        with pytest.raises(RuntimeError):
            store.put(b"a", b"b")


class TestBackendSelection:
    def test_open_store_sqlite(self, tmp_path):
        store = open_store(tmp_path / "a.db", "sqlite")
        assert isinstance(store, SQLiteStore)
        store.close()

    def test_open_store_lsm(self, tmp_path):
        store = open_store(tmp_path / "a.lsm", "lsm")
        assert isinstance(store, LSMStore)
        store.close()

    def test_open_store_unknown(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(tmp_path / "x", "rocksdb")

    def test_detect_backend(self, tmp_path):
        sqlite_store = SQLiteStore(tmp_path / "d.db")
        sqlite_store.close()
        lsm_store = LSMStore(tmp_path / "d.lsm")
        lsm_store.close()
        assert detect_backend(tmp_path / "d.db") == "sqlite"
        assert detect_backend(tmp_path / "d.lsm") == "lsm"
