"""Tests for SSIM, MS-SSIM, PSNR, and the MSSIM-accuracy regression."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.codecs.image import ImageBuffer
from repro.codecs.progressive import ProgressiveCodec
from repro.metrics.msssim import ms_ssim, mssim_per_scan
from repro.metrics.psnr import mse, psnr
from repro.metrics.regression import cluster_by_mssim, fit_mssim_accuracy
from repro.metrics.ssim import contrast_structure, ssim


class TestSSIM:
    def test_identical_images_score_one(self, color_image):
        assert ssim(color_image, color_image) == pytest.approx(1.0, abs=1e-9)

    def test_noise_reduces_ssim(self, color_image):
        rng = np.random.default_rng(0)
        mildly_noisy = ImageBuffer.from_array(color_image.as_float() + rng.normal(0, 5, color_image.pixels.shape))
        very_noisy = ImageBuffer.from_array(color_image.as_float() + rng.normal(0, 40, color_image.pixels.shape))
        assert 1.0 > ssim(color_image, mildly_noisy) > ssim(color_image, very_noisy)

    def test_shape_mismatch(self, color_image, odd_sized_image):
        with pytest.raises(ValueError):
            ssim(color_image, odd_sized_image)

    def test_full_returns_map(self, gray_image):
        value, ssim_map = ssim(gray_image, gray_image, full=True)
        assert value == pytest.approx(1.0, abs=1e-9)
        assert ssim_map.shape == gray_image.pixels.shape

    def test_contrast_structure_bounded(self, color_image):
        rng = np.random.default_rng(1)
        noisy = ImageBuffer.from_array(color_image.as_float() + rng.normal(0, 10, color_image.pixels.shape))
        value = contrast_structure(color_image, noisy)
        assert -1.0 <= value <= 1.0

    def test_works_on_raw_arrays(self):
        array = np.random.default_rng(2).uniform(0, 255, size=(32, 32))
        assert ssim(array, array) == pytest.approx(1.0, abs=1e-9)


class TestMSSSIM:
    def test_identical_images_score_one(self, color_image):
        assert ms_ssim(color_image, color_image) == pytest.approx(1.0, abs=1e-6)

    def test_quality_ordering_across_scans(self, color_image):
        codec = ProgressiveCodec(quality=90)
        data = codec.encode(color_image)
        full = codec.decode(data)
        reconstructions = [codec.decode(data, max_scans=k) for k in range(1, 11)]
        values = mssim_per_scan(full, reconstructions)
        assert len(values) == 10
        # MSSIM is (weakly) increasing with more scans and ends near 1.
        assert values[-1] > 0.99
        assert values[0] < values[-1]
        assert values[4] >= values[0]

    def test_small_images_use_fewer_scales(self):
        small = np.random.default_rng(3).uniform(0, 255, size=(20, 20))
        assert ms_ssim(small, small) == pytest.approx(1.0, abs=1e-6)

    def test_shape_mismatch(self, color_image, odd_sized_image):
        with pytest.raises(ValueError):
            ms_ssim(color_image, odd_sized_image)


class TestPSNR:
    def test_identical_images_are_infinite(self, color_image):
        assert math.isinf(psnr(color_image, color_image))
        assert mse(color_image, color_image) == 0.0

    def test_known_mse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 10.0)
        assert mse(a, b) == pytest.approx(100.0)
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 100.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))


class TestRegression:
    def test_recovers_linear_relationship(self):
        mssim_values = [0.85, 0.90, 0.95, 0.99, 1.0]
        accuracies = [296.8 * m - 246.2 for m in mssim_values]
        fit = fit_mssim_accuracy(mssim_values, accuracies)
        assert fit.slope == pytest.approx(296.8, rel=1e-6)
        assert fit.intercept == pytest.approx(-246.2, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(0.92) == pytest.approx(296.8 * 0.92 - 246.2)

    def test_noisy_fit_has_significant_p_value(self):
        rng = np.random.default_rng(4)
        mssim_values = list(np.linspace(0.8, 1.0, 20))
        accuracies = [60 * m + rng.normal(0, 0.5) for m in mssim_values]
        fit = fit_mssim_accuracy(mssim_values, accuracies)
        assert fit.p_value < 1e-6
        assert 50 < fit.slope < 70

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            fit_mssim_accuracy([0.9], [0.5, 0.6])
        with pytest.raises(ValueError):
            fit_mssim_accuracy([0.9], [0.5])

    def test_cluster_by_mssim(self):
        values = {1: 0.50, 2: 0.80, 3: 0.805, 4: 0.81, 5: 0.95, 6: 0.952, 7: 1.0}
        clusters = cluster_by_mssim(values, tolerance=0.02)
        assert [1] in clusters
        assert any(set(c) == {2, 3, 4} for c in clusters)
        assert any(5 in c and 6 in c for c in clusters)
