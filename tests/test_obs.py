"""Tests for the metrics registry, span tracer, and their wiring.

Covers the registry primitives (bucket edges, snapshot algebra), the
tracer (nesting, ordering, ring buffer, Chrome export), the StallTracker
facade, the loader's per-batch spans, fork-aware worker aggregation
parity, the ``GET_METRICS`` wire op, and cluster-wide scraping with dead
replicas.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    Tracer,
    diff_snapshots,
    get_registry,
    get_tracer,
    merge_snapshots,
)
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.pipeline.stall import StallTracker
from repro.serving.client import PCRClient
from repro.serving.cluster.coordinator import ClusterCoordinator
from repro.serving.server import PCRRecordServer


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestRegistry:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_metric_creation_is_idempotent(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_type_name_collision_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_gauge_set_and_inc(self, registry):
        gauge = registry.gauge("g")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 0
        assert snapshot["gauges"]["g"] == 0
        assert snapshot["histograms"]["h"]["count"] == 0

    def test_disabled_registry_overhead_smoke(self):
        # The disabled path is a single branch; even a pessimistic bound
        # catches accidental lock acquisition or dict lookups sneaking in.
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        start = time.perf_counter()
        for _ in range(200_000):
            counter.inc()
        elapsed = time.perf_counter() - start
        assert counter.value == 0
        assert elapsed < 1.0

    def test_set_enabled_toggles(self, registry):
        counter = registry.counter("c")
        registry.set_enabled(False)
        counter.inc()
        registry.set_enabled(True)
        counter.inc()
        assert counter.value == 1

    def test_reset_zeroes_but_keeps_objects(self, registry):
        counter = registry.counter("c")
        counter.inc(3)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper(self, registry):
        histogram = registry.histogram("h", edges=(1.0, 2.0))
        histogram.observe(0.5)  # bucket 0: v <= 1.0
        histogram.observe(1.0)  # bucket 0: inclusive upper edge
        histogram.observe(1.5)  # bucket 1: 1.0 < v <= 2.0
        histogram.observe(2.0)  # bucket 1: inclusive upper edge
        histogram.observe(99.0)  # overflow bucket
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 99.0)

    def test_overflow_bucket_always_present(self, registry):
        histogram = registry.histogram("h")
        assert len(histogram.counts) == len(DEFAULT_TIME_BUCKETS) + 1
        histogram.observe(1e9)
        assert histogram.counts[-1] == 1

    def test_unsorted_edges_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("dup", edges=(1.0, 1.0))

    def test_mismatched_edges_on_reregistration_raise(self, registry):
        registry.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", edges=(1.0, 3.0))

    def test_mean(self, registry):
        histogram = registry.histogram("h", edges=(10.0,))
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.mean == pytest.approx(2.0)


class TestSnapshotAlgebra:
    def test_diff_subtracts_counters_and_histograms(self, registry):
        registry.counter("c").inc(3)
        registry.histogram("h", edges=(1.0,)).observe(0.5)
        old = registry.snapshot()
        registry.counter("c").inc(2)
        registry.gauge("g").set(9)
        registry.histogram("h", edges=(1.0,)).observe(5.0)
        delta = diff_snapshots(registry.snapshot(), old)
        assert delta["counters"] == {"c": 2}
        assert delta["gauges"]["g"] == 9  # gauges keep the new level
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(5.0)

    def test_diff_drops_unchanged_metrics(self, registry):
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        delta = diff_snapshots(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_merge_folds_delta_into_registry(self, registry):
        registry.counter("c").inc(1)
        registry.merge(
            {
                "counters": {"c": 4, "new": 2},
                "gauges": {"g": 3},
                "histograms": {
                    "h": {"edges": [1.0], "counts": [1, 2], "sum": 5.0, "count": 3}
                },
            }
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 5
        assert snapshot["counters"]["new"] == 2
        assert snapshot["gauges"]["g"] == 3
        assert snapshot["histograms"]["h"]["counts"] == [1, 2]

    def test_merge_snapshots_adds_everything(self, registry):
        a = {
            "counters": {"c": 1},
            "gauges": {"g": 2},
            "histograms": {"h": {"edges": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}},
        }
        b = {
            "counters": {"c": 2, "d": 7},
            "gauges": {"g": 3},
            "histograms": {"h": {"edges": [1.0], "counts": [0, 2], "sum": 9.0, "count": 2}},
        }
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"c": 3, "d": 7}
        assert merged["gauges"] == {"g": 5}
        assert merged["histograms"]["h"]["counts"] == [1, 2]
        assert merged["histograms"]["h"]["count"] == 3

    def test_merge_snapshots_rejects_mismatched_edges(self):
        a = {"histograms": {"h": {"edges": [1.0], "counts": [0, 0], "sum": 0, "count": 0}}}
        b = {"histograms": {"h": {"edges": [2.0], "counts": [0, 0], "sum": 0, "count": 0}}}
        with pytest.raises(ValueError):
            merge_snapshots([a, b])


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.add_event("b", 0.0, 1.0)
        assert len(tracer) == 0

    def test_nesting_records_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("outer.inner"):
                pass
        inner, outer = tracer.events()  # completion order: inner exits first
        assert inner.name == "outer.inner"
        assert inner.parent == "outer"
        assert outer.parent is None

    def test_chrome_export_ordering_and_schema(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("phase.a", {"k": 1}):
            with tracer.span("phase.b"):
                pass
        path = tracer.export_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["phase.a", "phase.b"]  # sorted by ts
        assert all(e["ph"] == "X" for e in events)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        assert events[0]["cat"] == "phase"
        assert events[0]["args"]["k"] == 1
        assert events[1]["args"]["parent"] == "phase.a"

    def test_ring_buffer_keeps_most_recent(self):
        tracer = Tracer(capacity=4, enabled=True)
        for index in range(10):
            tracer.add_event(f"e{index}", float(index), 0.1)
        names = [event.name for event in tracer.events()]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_nesting_interval_containment(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("outer.inner"):
                time.sleep(0.001)
        inner, outer = tracer.events()
        assert outer.start <= inner.start
        assert inner.end <= outer.end


class TestStallTrackerFacade:
    def test_lists_and_registry_agree(self):
        registry = MetricsRegistry()
        tracker = StallTracker(registry=registry)
        tracker.record_wait(0.5)
        tracker.record_wait(0.0001)
        tracker.record_compute(0.25)
        assert tracker.wait_seconds == [0.5, 0.0001]
        assert tracker.total_wait == pytest.approx(0.5001)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["loader.wait_seconds_total"] == pytest.approx(0.5001)
        assert snapshot["counters"]["loader.compute_seconds_total"] == pytest.approx(0.25)
        assert snapshot["counters"]["loader.stalled_iterations_total"] == 1
        assert snapshot["histograms"]["loader.wait_seconds"]["count"] == 2


class TestLoaderTracing:
    def test_epoch_trace_reproduces_stall_timeline(self, pcr_dataset, tmp_path):
        tracer = get_tracer()
        tracer.clear()
        tracer.set_enabled(True)
        try:
            loader = DataLoader(
                pcr_dataset, LoaderConfig(batch_size=8, n_workers=1, shuffle=False)
            )
            try:
                batches = list(loader.epoch())
            finally:
                loader.close()
            events = tracer.events()
            path = tracer.export_chrome(tmp_path / "epoch.json")
        finally:
            tracer.set_enabled(False)
            tracer.clear()
        assert batches
        by_name: dict[str, list] = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)
        # The per-batch span set the tentpole promises.
        for name in ("loader.wait", "loader.fetch", "loader.decode", "loader.collate"):
            assert by_name.get(name), f"missing {name} spans"
        # loader.wait spans ARE the stall timeline: same count, same values,
        # in the same order, because both sides are fed from one measurement.
        waits = [event.duration for event in by_name["loader.wait"]]
        assert waits == loader.stalls.wait_seconds
        assert len(by_name["loader.collate"]) == len(batches)
        # The export is valid Chrome trace JSON, sorted by timestamp.
        document = json.loads(path.read_text())
        timestamps = [event["ts"] for event in document["traceEvents"]]
        assert timestamps == sorted(timestamps)
        assert {event["ph"] for event in document["traceEvents"]} == {"X"}

    def test_epoch_counts_batches_on_registry(self, pcr_dataset):
        registry = get_registry()
        before = registry.snapshot()
        loader = DataLoader(pcr_dataset, LoaderConfig(batch_size=8, n_workers=1))
        try:
            n_batches = len(list(loader.epoch()))
        finally:
            loader.close()
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"]["loader.batches_total"] == n_batches
        assert delta["counters"]["loader.wait_seconds_total"] == pytest.approx(
            loader.stalls.total_wait
        )


class TestForkAwareAggregation:
    def _decode_delta(self, dataset, decode_workers: int) -> dict:
        registry = get_registry()
        before = registry.snapshot()
        loader = DataLoader(
            dataset,
            LoaderConfig(batch_size=8, n_workers=1, seed=11, decode_workers=decode_workers),
        )
        try:
            list(loader.epoch())
        finally:
            loader.close()
        return diff_snapshots(registry.snapshot(), before)

    def test_worker_metrics_match_in_process(self, pcr_dataset):
        """decode_workers=2 must aggregate the same decode totals as 0."""
        in_process = self._decode_delta(pcr_dataset, 0)
        parallel = self._decode_delta(pcr_dataset, 2)
        for name in ("decode.streams_total", "decode.bytes_total"):
            assert parallel["counters"].get(name) == in_process["counters"].get(name), name
        assert in_process["counters"]["decode.streams_total"] > 0

    def test_worker_metrics_match_with_superscalar_tables(self, pcr_dataset):
        """Fork parity must survive the superscalar pair-LUT decode tier.

        Workers pre-warm the payload-keyed Huffman table cache (building
        the superscalar tables at startup) and reset their registry before
        the first chunk, so the ``decode.*`` totals must still aggregate
        exactly as in-process — warmup builds and cache charges must never
        leak into the fleet delta.
        """
        from repro.codecs import config as codec_config

        with codec_config.use_superscalar(True):
            in_process = self._decode_delta(pcr_dataset, 0)
            parallel = self._decode_delta(pcr_dataset, 2)
        for name in ("decode.streams_total", "decode.bytes_total"):
            assert parallel["counters"].get(name) == in_process["counters"].get(name), name
        assert in_process["counters"]["decode.streams_total"] > 0


@pytest.fixture()
def obs_server(pcr_dataset):
    with PCRRecordServer(pcr_dataset.reader.directory, port=0) as running:
        yield running


class TestGetMetricsWireOp:
    def test_round_trip_against_live_server(self, obs_server, pcr_dataset):
        with PCRClient(port=obs_server.port) as client:
            name = pcr_dataset.record_names[0]
            client.get_record_bytes(name, 1)
            client.get_record_bytes(name, 1)
            report = client.metrics()
        assert report["metrics_enabled"] is True
        assert tuple(report["address"]) == obs_server.address
        counters = report["registry"]["counters"]
        assert counters["serving.requests.get_record_total"] == 2
        assert counters["serving.requests.get_metrics_total"] == 1
        assert counters["serving.cache.misses_total"] == 1
        assert counters["serving.cache.exact_hits_total"] == 1
        assert counters["serving.bytes_received_total"] > 0
        assert counters["serving.bytes_sent_total"] > 0
        histograms = report["registry"]["histograms"]
        assert histograms["serving.loop.iteration_seconds"]["count"] > 0
        gauges = report["registry"]["gauges"]
        assert gauges["serving.cache.entries"] == 1

    def test_snapshot_matches_stat_counters(self, obs_server, pcr_dataset):
        with PCRClient(port=obs_server.port) as client:
            client.get_record_bytes(pcr_dataset.record_names[0], 1)
            stat = client.stat()
            report = client.metrics()
        counters = report["registry"]["counters"]
        cache = stat["cache"]
        assert counters["serving.cache.misses_total"] == cache["misses"]
        assert counters["serving.cache.exact_hits_total"] == cache["exact_hits"]
        assert stat["requests_by_type"]["0x01"] == counters[
            "serving.requests.get_record_total"
        ]

    def test_disabled_server_reports_disabled(self, pcr_dataset):
        with PCRRecordServer(
            pcr_dataset.reader.directory, port=0, metrics_enabled=False
        ) as server:
            with PCRClient(port=server.port) as client:
                client.get_record_bytes(pcr_dataset.record_names[0], 1)
                report = client.metrics()
        assert report["metrics_enabled"] is False
        assert report["registry"]["counters"]["serving.errors_total"] == 0


class TestClusterScraping:
    def test_cluster_stats_merges_live_replicas(self, pcr_dataset):
        directory = pcr_dataset.reader.directory
        with ClusterCoordinator(directory, n_shards=2, n_replicas=1) as coordinator:
            report = coordinator.cluster_stats()
            assert report["live_replicas"] == 2
            assert report["total_replicas"] == 2
            assert all(r["status"] == "up" for r in report["replicas"].values())
            merged = report["merged"]["counters"]
            # Each replica answered exactly one GET_METRICS scrape.
            assert merged["serving.requests.get_metrics_total"] == 2

    def test_dead_replica_reported_down_not_raised(self, pcr_dataset):
        directory = pcr_dataset.reader.directory
        with ClusterCoordinator(directory, n_shards=2, n_replicas=1) as coordinator:
            victim = coordinator.live_replicas()[0]
            coordinator.stop_replica(victim.shard_id, 0)
            report = coordinator.cluster_stats(timeout=1.0)
            assert report["live_replicas"] == 1
            assert report["total_replicas"] == 2
            statuses = sorted(r["status"] for r in report["replicas"].values())
            assert statuses == ["down", "up"]
            down = next(
                r for r in report["replicas"].values() if r["status"] == "down"
            )
            assert "error" in down
            # The in-process stats sweep tolerates the dead replica too.
            stats = coordinator.stats()
            assert stats["cluster"]["live_replicas"] == 1


class TestStorageMetrics:
    def test_io_stats_mirror_onto_registry(self):
        from repro.storage.io_stats import IOStats

        registry = get_registry()
        before = registry.snapshot()
        stats = IOStats()
        stats.record_read(1024, 0.002, seek=True)
        stats.record_write(256, 0.001, seek=False)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"]["storage.read_ops_total"] == 1
        assert delta["counters"]["storage.bytes_read_total"] == 1024
        assert delta["counters"]["storage.write_ops_total"] == 1
        assert delta["counters"]["storage.seeks_total"] == 1
        assert delta["histograms"]["storage.op_latency_seconds"]["count"] == 2
        assert stats.read_ops == 1  # the instance view is unchanged
