"""Tests for the baseline record formats and the synthetic dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.baseline import BaselineCodec
from repro.datasets.labels import (
    binary_task_mapper,
    is_corvette_mapper,
    make_only_mapper,
    n_classes_after,
)
from repro.datasets.registry import (
    CARS_SPEC,
    PAPER_DATASET_STATISTICS,
    all_specs,
    generate_dataset,
    spec_by_name,
)
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec
from repro.metrics.psnr import mse
from repro.records.file_per_image import FilePerImageDataset, FilePerImageWriter
from repro.records.recordio import RecordIOReader, RecordIOWriter
from repro.records.tfrecord import TFExample, TFRecordReader, TFRecordWriter


class TestFilePerImage:
    def test_write_and_discover(self, tmp_path, tiny_samples):
        writer = FilePerImageWriter(tmp_path / "folder", quality=90)
        writer.write_dataset(tiny_samples[:10])
        dataset = FilePerImageDataset(tmp_path / "folder")
        assert len(dataset) == 10
        labels = {sample.label for sample in dataset}
        assert labels == {0, 1, 2, 3}

    def test_read_image_roundtrip(self, tmp_path, tiny_samples):
        writer = FilePerImageWriter(tmp_path / "folder2", quality=90)
        writer.write_dataset(tiny_samples[:4])
        dataset = FilePerImageDataset(tmp_path / "folder2")
        image, label = dataset.read_image(0)
        original = dict((k, (im, l)) for k, im, l in tiny_samples)[dataset[0].key]
        assert label == original[1]
        assert image.pixels.shape == original[0].pixels.shape
        # Lossy but recognisable: far better than comparing to an unrelated image.
        other = tiny_samples[3][1]
        assert mse(original[0], image) < mse(other, image)

    def test_total_bytes_positive(self, tmp_path, tiny_samples):
        writer = FilePerImageWriter(tmp_path / "folder3", quality=90)
        writer.write_dataset(tiny_samples[:3])
        dataset = FilePerImageDataset(tmp_path / "folder3")
        assert dataset.total_bytes() == writer.total_bytes > 0

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FilePerImageDataset(tmp_path / "missing")


class TestTFRecord:
    def test_roundtrip(self, tmp_path, tiny_samples):
        path = tmp_path / "data.tfrecord"
        writer = TFRecordWriter(path, quality=90)
        writer.write_dataset(tiny_samples[:6])
        examples = list(TFRecordReader(path))
        assert len(examples) == 6
        assert [e.label for e in examples] == [label for _, _, label in tiny_samples[:6]]
        decoded = BaselineCodec().decode(examples[0].image_bytes)
        assert decoded.height == tiny_samples[0][1].height

    def test_example_serialization(self):
        example = TFExample(key="k", label=-5, image_bytes=b"\x01\x02\x03")
        restored = TFExample.from_bytes(example.to_bytes())
        assert restored == example

    def test_crc_detects_corruption(self, tmp_path, tiny_samples):
        path = tmp_path / "corrupt.tfrecord"
        TFRecordWriter(path, quality=90).write_dataset(tiny_samples[:2])
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            list(TFRecordReader(path))

    def test_crc_can_be_skipped(self, tmp_path, tiny_samples):
        path = tmp_path / "skip.tfrecord"
        TFRecordWriter(path, quality=90).write_dataset(tiny_samples[:2])
        assert len(list(TFRecordReader(path, verify_crc=False))) == 2


class TestRecordIO:
    def test_roundtrip(self, tmp_path, tiny_samples):
        path = tmp_path / "data.rec"
        writer = RecordIOWriter(path, quality=90)
        writer.write_dataset(tiny_samples[:5])
        items = list(RecordIOReader(path))
        assert [item.index for item in items] == list(range(5))
        assert [item.label for item in items] == [label for _, _, label in tiny_samples[:5]]

    def test_bad_magic_detected(self, tmp_path, tiny_samples):
        path = tmp_path / "bad.rec"
        RecordIOWriter(path, quality=90).write_dataset(tiny_samples[:1])
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            list(RecordIOReader(path))

    def test_total_bytes(self, tmp_path, tiny_samples):
        path = tmp_path / "size.rec"
        RecordIOWriter(path, quality=90).write_dataset(tiny_samples[:3])
        assert RecordIOReader(path).total_bytes() == path.stat().st_size


class TestSyntheticGenerator:
    def test_images_of_same_class_are_similar_but_not_identical(self):
        generator = SyntheticImageGenerator(n_classes=4, seed=0)
        a = generator.generate(1, sample_seed=1)
        b = generator.generate(1, sample_seed=2)
        c = generator.generate(3, sample_seed=3)
        assert mse(a, b) < mse(a, c)
        assert mse(a, b) > 0

    def test_label_out_of_range(self):
        generator = SyntheticImageGenerator(n_classes=3)
        with pytest.raises(ValueError):
            generator.generate(3)

    def test_coarse_group_assignment(self):
        spec = SyntheticImageSpec(n_coarse_groups=4)
        generator = SyntheticImageGenerator(n_classes=12, spec=spec)
        assert generator.coarse_group(0) == generator.coarse_group(4) == generator.coarse_group(8)

    def test_batch_generation(self):
        generator = SyntheticImageGenerator(n_classes=5, seed=1)
        batch = generator.generate_batch(12, seed=2)
        assert len(batch) == 12
        assert [label for _, _, label in batch[:5]] == [0, 1, 2, 3, 4]
        assert len({key for key, _, _ in batch}) == 12

    def test_deterministic_given_seeds(self):
        spec = SyntheticImageSpec(image_size=24)
        a = SyntheticImageGenerator(4, spec=spec, seed=3).generate(2, sample_seed=9)
        b = SyntheticImageGenerator(4, spec=spec, seed=3).generate(2, sample_seed=9)
        assert np.array_equal(a.pixels, b.pixels)

    def test_fine_signal_lives_in_high_frequencies(self):
        # Blurring (removing high frequencies) should hurt within-group class
        # separation more than across-group separation.
        from repro.codecs.progressive import ProgressiveCodec

        spec = SyntheticImageSpec(image_size=48, n_coarse_groups=2, noise_sigma=2.0)
        generator = SyntheticImageGenerator(n_classes=4, spec=spec, seed=5)
        codec = ProgressiveCodec(quality=90)
        # classes 0 and 2 share coarse group 0; class 1 is in group 1
        same_group_a = generator.generate(0, sample_seed=1)
        same_group_b = generator.generate(2, sample_seed=2)
        low_a = codec.decode(codec.encode(same_group_a), max_scans=1)
        low_b = codec.decode(codec.encode(same_group_b), max_scans=1)
        # At scan 1 the two same-group classes look more alike than at full quality.
        assert mse(low_a, low_b) < mse(same_group_a, same_group_b)


class TestDatasetRegistry:
    def test_four_specs(self):
        specs = all_specs()
        assert len(specs) == 4
        assert {spec.name for spec in specs} == {"imagenet", "celebahq", "ham10000", "cars"}

    def test_spec_lookup(self):
        assert spec_by_name("cars") is CARS_SPEC
        with pytest.raises(KeyError):
            spec_by_name("mnist")

    def test_generate_dataset_counts_and_labels(self):
        samples = list(generate_dataset(CARS_SPEC, seed=0, n_samples=30))
        assert len(samples) == 30
        assert all(0 <= label < CARS_SPEC.n_classes for _, _, label in samples)
        assert all(image.height == CARS_SPEC.image_size for _, image, _ in samples)

    def test_paper_statistics_table(self):
        assert set(PAPER_DATASET_STATISTICS) == {"ImageNet", "HAM10000", "Stanford Cars", "CelebAHQ"}
        assert PAPER_DATASET_STATISTICS["ImageNet"]["classes"] == 1000

    def test_specs_mirror_paper_ordering(self):
        # HAM10000 has the largest images; CelebA-HQ is binary; Cars is fine-grained.
        from repro.datasets.registry import CELEBAHQ_SPEC, HAM10000_SPEC, IMAGENET_SPEC

        assert HAM10000_SPEC.image_size >= max(IMAGENET_SPEC.image_size, CARS_SPEC.image_size)
        assert CELEBAHQ_SPEC.n_classes == 2
        assert CARS_SPEC.fine_grained
        assert HAM10000_SPEC.jpeg_quality == 100


class TestLabelMappers:
    def test_make_only(self):
        mapper = make_only_mapper(6)
        assert mapper(0) == 0
        assert mapper(6) == 0
        assert mapper(7) == 1
        assert n_classes_after(mapper, 24) == 6

    def test_is_corvette(self):
        mapper = is_corvette_mapper(6, target_group=2)
        assert mapper(2) == 1
        assert mapper(8) == 1
        assert mapper(3) == 0
        assert n_classes_after(mapper, 24) == 2

    def test_binary_mapper(self):
        mapper = binary_task_mapper({1, 3})
        assert mapper(1) == 1
        assert mapper(2) == 0
        assert n_classes_after(mapper, 4) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_only_mapper(0)
        with pytest.raises(ValueError):
            is_corvette_mapper(4, target_group=7)
