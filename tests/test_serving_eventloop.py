"""Event-loop front-end tests: concurrency, hostile clients, cleanliness.

`tests/test_serving.py` covers the wire protocol and client API; this file
drives the non-blocking event loop itself — hundreds of simultaneous
sockets, slow-loris byte-at-a-time clients, oversized/truncated frames
against the incremental parser, mid-write disconnects, backpressure, and
the lock-free ScanPrefixCache semantics the loop relies on.
"""

from __future__ import annotations

import os
import socket
import struct
import time

import pytest

from repro.serving import protocol
from repro.serving.client import PCRClient
from repro.serving.server import PCRRecordServer, ScanPrefixCache

# Kept modest by default so the suite passes under a low ``ulimit -n``;
# CI raises it via the environment when the box allows.
N_STORM_SOCKETS = int(os.environ.get("PCR_TEST_CONNECTIONS", "200"))


@pytest.fixture(scope="module")
def server(pcr_dataset):
    with PCRRecordServer(pcr_dataset.reader.directory, port=0) as running:
        yield running


def _record_frame(name: str, group: int) -> bytes:
    return protocol.encode_frame(
        protocol.MSG_GET_RECORD,
        protocol.pack_record_request(protocol.RecordRequest(name, group)),
    )


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _n_open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


# -- high-concurrency smoke ---------------------------------------------------


class TestHighConcurrency:
    def test_hundreds_of_simultaneous_sockets(self, server, pcr_dataset):
        """All sockets connect first (peak concurrency == N), then each does
        one full request/response round trip while the rest stay open."""
        name = pcr_dataset.record_names[0]
        expected = pcr_dataset.reader.read_record_bytes(name, 1)
        frame = _record_frame(name, 1)
        socks = []
        try:
            for _ in range(N_STORM_SOCKETS):
                socks.append(
                    socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
                )
            assert _wait_until(
                lambda: server.open_connections >= N_STORM_SOCKETS
            ), f"only {server.open_connections} connections admitted"
            for sock in socks:
                sock.sendall(frame)
            for sock in socks:
                msg_type, payload = protocol.read_frame(sock)
                assert msg_type == protocol.MSG_RECORD_DATA
                assert payload == expected
        finally:
            for sock in socks:
                sock.close()
        assert _wait_until(lambda: server.open_connections == 0)

    def test_multi_loop_server(self, pcr_dataset):
        """n_loops=2: accepts round-robin across loops, same answers."""
        name = pcr_dataset.record_names[0]
        expected = pcr_dataset.reader.read_record_bytes(name, 2)
        with PCRRecordServer(pcr_dataset.reader.directory, port=0, n_loops=2) as server:
            clients = [PCRClient(port=server.port) for _ in range(4)]
            try:
                for client in clients:
                    assert client.get_record_bytes(name, 2) == expected
            finally:
                for client in clients:
                    client.close()
            stats = server.stats()["event_loop"]
            assert stats["n_loops"] == 2
            assert stats["accepted_connections"] >= 4


# -- hostile / slow clients ---------------------------------------------------


class TestSlowAndHostileClients:
    def test_slow_loris_one_byte_at_a_time(self, server, pcr_dataset):
        """A request dribbled one byte per send — across the header/payload
        boundary — still gets a complete, correct response."""
        name = pcr_dataset.record_names[0]
        expected = pcr_dataset.reader.read_record_bytes(name, 1)
        frame = _record_frame(name, 1)
        with socket.create_connection(("127.0.0.1", server.port), timeout=10.0) as sock:
            for i in range(len(frame)):
                sock.sendall(frame[i : i + 1])
                time.sleep(0.001)
            msg_type, payload = protocol.read_frame(sock)
            assert msg_type == protocol.MSG_RECORD_DATA
            assert payload == expected

    def test_oversized_frame_rejected_without_buffering(self, server):
        """A header announcing a payload over the limit is answered with a
        MALFORMED error as soon as the 8 header bytes arrive — the server
        never waits for (or allocates) the announced payload."""
        huge = protocol.DEFAULT_MAX_PAYLOAD_BYTES + 1
        header = protocol.encode_header(protocol.MSG_GET_RECORD, huge, huge + 1)
        with socket.create_connection(("127.0.0.1", server.port), timeout=10.0) as sock:
            sock.sendall(header)  # header only; payload never sent
            msg_type, payload = protocol.read_frame(sock)
            assert msg_type == protocol.MSG_ERROR
            error = protocol.unpack_error(payload)
            assert error.code == protocol.ERR_MALFORMED
            # The server closes the connection after the error frame.
            assert protocol.read_frame(sock) is None

    def test_bad_magic_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10.0) as sock:
            sock.sendall(b"XXXXXXXX")
            msg_type, payload = protocol.read_frame(sock)
            assert msg_type == protocol.MSG_ERROR
            assert protocol.unpack_error(payload).code == protocol.ERR_MALFORMED
            assert protocol.read_frame(sock) is None

    def test_truncated_frame_gets_malformed_error(self, server, pcr_dataset):
        """EOF inside a frame is answered with a MALFORMED error before the
        server closes its side — at every truncation point."""
        frame = _record_frame(pcr_dataset.record_names[0], 1)
        for cut in (1, protocol.HEADER_SIZE - 1, protocol.HEADER_SIZE, len(frame) - 1):
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10.0
            ) as sock:
                sock.sendall(frame[:cut])
                sock.shutdown(socket.SHUT_WR)
                msg_type, payload = protocol.read_frame(sock)
                assert msg_type == protocol.MSG_ERROR, f"cut={cut}"
                assert protocol.unpack_error(payload).code == protocol.ERR_MALFORMED
                assert protocol.read_frame(sock) is None

    def test_assembler_truncation_fuzz(self, pcr_dataset):
        """Feed a three-frame stream to the incremental parser at every split
        point; the reassembled frames must be identical regardless of split."""
        frames = [
            _record_frame(pcr_dataset.record_names[0], 1),
            protocol.encode_frame(protocol.MSG_STAT, b""),
            _record_frame(pcr_dataset.record_names[-1], 3),
        ]
        stream = b"".join(frames)
        reference = protocol.split_frames(stream)
        for split in range(1, len(stream)):
            assembler = protocol.FrameAssembler()
            got = assembler.feed(stream[:split])
            got += assembler.feed(stream[split:])
            assert got == reference, f"split={split}"
            assert not assembler.mid_frame
        # A stream cut anywhere mid-frame leaves the assembler mid-frame.
        assembler = protocol.FrameAssembler()
        assembler.feed(stream[: protocol.HEADER_SIZE + 1])
        assert assembler.mid_frame


# -- disconnect cleanliness ---------------------------------------------------


class TestDisconnectCleanliness:
    def test_mid_write_disconnect_leaks_nothing(self, pcr_dataset):
        """Clients that vanish without reading their responses must not leak
        selector keys or file descriptors server-side."""
        name = pcr_dataset.record_names[0]
        group = pcr_dataset.n_groups
        frame = _record_frame(name, group)
        with PCRRecordServer(pcr_dataset.reader.directory, port=0) as server:
            with PCRClient(port=server.port) as warm:
                warm.get_record_bytes(name, group)
            baseline_fds = _n_open_fds()
            for _ in range(50):
                sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
                # Request a response, then disappear before reading a byte of
                # it: the server's write lands on a dead socket mid-flush.
                sock.sendall(frame * 4)
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),  # RST on close, not FIN
                )
                sock.close()
            assert _wait_until(lambda: server.open_connections == 0), (
                f"{server.open_connections} connections leaked"
            )
            assert _wait_until(lambda: _n_open_fds() <= baseline_fds), (
                f"fd count {_n_open_fds()} never returned to baseline {baseline_fds}"
            )
            # The server is still healthy afterwards.
            with PCRClient(port=server.port) as client:
                assert client.get_record_bytes(name, group) == bytes(
                    pcr_dataset.reader.read_record_bytes(name, group)
                )

    def test_backpressure_pauses_slow_reader(self, pcr_dataset):
        """A client that pipelines many requests but reads nothing trips the
        output high-water mark; once it drains, every response arrives."""
        name = pcr_dataset.record_names[0]
        group = pcr_dataset.n_groups
        n_requests = 64
        with PCRRecordServer(
            pcr_dataset.reader.directory,
            port=0,
            backpressure_bytes=4096,
            socket_buffer_bytes=4096,
        ) as server:
            expected = bytes(pcr_dataset.reader.read_record_bytes(name, group))
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
                sock.settimeout(10.0)
                sock.connect(("127.0.0.1", server.port))
                sock.sendall(_record_frame(name, group) * n_requests)
                # Give the loop time to fill the tiny buffers and pause.
                _wait_until(
                    lambda: server.stats()["event_loop"]["backpressure_pauses"] > 0,
                    timeout=2.0,
                )
                for _ in range(n_requests):
                    msg_type, payload = protocol.read_frame(sock)
                    assert msg_type == protocol.MSG_RECORD_DATA
                    assert payload == expected
            finally:
                sock.close()
            assert server.stats()["event_loop"]["backpressure_pauses"] > 0


# -- cache semantics under the loop ------------------------------------------


class TestLockFreeCache:
    def test_containment_hit_is_a_view_not_a_copy(self):
        cache = ScanPrefixCache(capacity_bytes=1 << 20, thread_safe=False)
        data = bytes(range(256)) * 4
        cache.put("record", 5, data)
        exact = cache.get("record", 5, len(data))
        assert exact is data  # exact-length hit: the stored bytes themselves
        view = cache.get("record", 2, 100)
        assert isinstance(view, memoryview)
        assert bytes(view) == data[:100]
        assert cache.exact_hits == 1 and cache.prefix_hits == 1

    def test_view_survives_eviction(self):
        cache = ScanPrefixCache(capacity_bytes=1024, thread_safe=False)
        first = b"a" * 600
        cache.put("one", 3, first)
        view = cache.get("one", 1, 300)
        cache.put("two", 3, b"b" * 600)  # evicts "one"
        assert cache.get("one", 1, 300) is None
        assert bytes(view) == first[:300]  # the view pins the evicted bytes

    def test_thread_safe_flag_selects_lock(self):
        import threading as _threading

        assert isinstance(
            ScanPrefixCache(thread_safe=True)._lock, type(_threading.Lock())
        )
        assert not isinstance(
            ScanPrefixCache(thread_safe=False)._lock, type(_threading.Lock())
        )

    def test_server_cache_lock_mode_follows_n_loops(self, pcr_dataset):
        directory = pcr_dataset.reader.directory
        single = PCRRecordServer(directory, port=0)
        multi = PCRRecordServer(directory, port=0, n_loops=2)
        try:
            assert single.cache.thread_safe is False
            assert multi.cache.thread_safe is True
        finally:
            single.stop()
            multi.stop()
