"""Tests for markers, baseline/progressive codecs, and lossless transcoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.baseline import BaselineCodec
from repro.codecs.image import ImageBuffer
from repro.codecs.markers import (
    EOI,
    SOI,
    CodecFormatError,
    FrameHeader,
    ScanHeader,
    find_scan_segments,
    header_prefix_length,
    parse_frame_header,
)
from repro.codecs.progressive import (
    ProgressiveCodec,
    ScanScript,
    assemble_partial_stream,
    coefficients_to_image,
    decode_coefficients,
    image_to_coefficients,
    split_scans,
)
from repro.codecs.quantization import QuantizationTables
from repro.codecs.transcode import (
    is_lossless_roundtrip,
    scan_count,
    transcode_to_progressive,
    transcode_to_sequential,
)
from repro.metrics.psnr import mse


class TestMarkers:
    def test_frame_header_roundtrip(self):
        header = FrameHeader(100, 80, 3, 1, QuantizationTables.for_quality(85))
        data = SOI + header.to_bytes() + EOI
        parsed, offset = parse_frame_header(data)
        assert parsed.height == 100
        assert parsed.width == 80
        assert parsed.n_components == 3
        assert parsed.quant_tables.quality == 85
        assert data[offset : offset + 2] == EOI

    def test_component_shape_subsampling(self):
        header = FrameHeader(33, 21, 3, 1, QuantizationTables.for_quality(90))
        assert header.component_shape(0) == (33, 21)
        assert header.component_shape(1) == (17, 11)

    def test_scan_header_roundtrip(self):
        header = ScanHeader((0, 1, 2), 0, 0)
        parsed, _ = ScanHeader.parse(header.to_bytes(), 0)
        assert parsed == header

    def test_missing_soi_raises(self):
        with pytest.raises(CodecFormatError):
            parse_frame_header(b"\x00\x00")

    def test_find_segments_on_truncated_stream(self, color_image):
        codec = ProgressiveCodec(quality=85)
        data = codec.encode(color_image)
        segments = find_scan_segments(data)
        assert len(segments) == 10
        # Cut in the middle of the 4th scan: only 3 complete scans remain.
        cut = segments[3].start + (segments[3].end - segments[3].start) // 2
        truncated = data[:cut]
        assert len(find_scan_segments(truncated)) == 3

    def test_header_prefix_length(self, color_image):
        data = ProgressiveCodec().encode(color_image)
        prefix = header_prefix_length(data)
        assert data[:2] == SOI
        assert find_scan_segments(data)[0].start == prefix


class TestScanScript:
    def test_default_color_script_has_ten_scans(self):
        script = ScanScript.default_color()
        assert len(script) == 10
        script.validate(3)

    def test_default_grayscale_script_has_ten_scans(self):
        script = ScanScript.default_grayscale()
        assert len(script) == 10
        script.validate(1)

    def test_sequential_script_covers_everything(self):
        ScanScript.sequential(3).validate(3)
        ScanScript.sequential(1).validate(1)

    def test_default_for_unknown_component_count(self):
        with pytest.raises(ValueError):
            ScanScript.default_for(2)

    def test_validate_rejects_overlap(self):
        script = ScanScript((ScanHeader((0,), 0, 10), ScanHeader((0,), 10, 63)))
        with pytest.raises(ValueError):
            script.validate(1)

    def test_validate_rejects_missing_coverage(self):
        script = ScanScript((ScanHeader((0,), 0, 10),))
        with pytest.raises(ValueError):
            script.validate(1)

    def test_validate_rejects_unknown_component(self):
        script = ScanScript((ScanHeader((0, 5), 0, 63),))
        with pytest.raises(ValueError):
            script.validate(1)


class TestProgressiveCodec:
    def test_roundtrip_quality_improves_with_scans(self, color_image):
        codec = ProgressiveCodec(quality=90)
        data = codec.encode(color_image)
        errors = [mse(color_image, codec.decode(data, max_scans=k)) for k in (1, 3, 5, 10)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 400.0

    def test_grayscale_roundtrip(self, gray_image):
        codec = ProgressiveCodec(quality=90)
        data = codec.encode(gray_image)
        assert codec.n_scans(data) == 10
        decoded = codec.decode(data)
        assert decoded.pixels.shape == gray_image.pixels.shape
        assert mse(gray_image, decoded) < 200.0

    def test_odd_dimensions_roundtrip(self, odd_sized_image):
        codec = ProgressiveCodec(quality=90)
        decoded = codec.decode(codec.encode(odd_sized_image))
        assert decoded.height == odd_sized_image.height
        assert decoded.width == odd_sized_image.width

    def test_higher_quality_means_more_bytes_and_lower_error(self, color_image):
        low = ProgressiveCodec(quality=40)
        high = ProgressiveCodec(quality=95)
        low_data = low.encode(color_image)
        high_data = high.encode(color_image)
        assert len(high_data) > len(low_data)
        assert mse(color_image, high.decode(high_data)) < mse(color_image, low.decode(low_data))

    def test_decode_truncated_stream(self, color_image):
        codec = ProgressiveCodec(quality=90)
        data = codec.encode(color_image)
        segments = find_scan_segments(data)
        truncated = data[: segments[4].end]  # 5 complete scans, no EOI
        image = codec.decode(truncated)
        assert image.pixels.shape == color_image.pixels.shape

    def test_split_and_reassemble_scans(self, color_image):
        codec = ProgressiveCodec(quality=90)
        data = codec.encode(color_image)
        prefix, scans = split_scans(data)
        assert len(scans) == 10
        for k in (1, 4, 10):
            partial = assemble_partial_stream(prefix, scans[:k])
            coefficients, n_applied = decode_coefficients(partial)
            assert n_applied == k
        full = assemble_partial_stream(prefix, scans)
        assert np.array_equal(
            codec.decode(full).pixels, codec.decode(data).pixels
        )

    def test_scan_sizes_decrease_in_importance(self, color_image):
        # The DC + low-frequency scans carry more bytes per coefficient than
        # the trailing high-frequency scans for natural-ish images.
        codec = ProgressiveCodec(quality=90)
        _, scans = split_scans(codec.encode(color_image))
        total = sum(len(scan) for scan in scans)
        first_half = sum(len(scan) for scan in scans[:5])
        assert first_half > 0.35 * total

    def test_coefficient_planes_shapes(self, color_image):
        planes = image_to_coefficients(color_image, quality=90)
        assert len(planes.planes) == 3
        assert planes.planes[0].shape[1] == 64
        # Chroma is subsampled: fewer blocks than luma.
        assert planes.planes[1].shape[0] < planes.planes[0].shape[0]
        reconstructed = coefficients_to_image(planes)
        assert reconstructed.pixels.shape == color_image.pixels.shape

    def test_custom_script(self, color_image):
        script = ScanScript(
            (
                ScanHeader((0, 1, 2), 0, 0),
                ScanHeader((0,), 1, 63),
                ScanHeader((1,), 1, 63),
                ScanHeader((2,), 1, 63),
            )
        )
        codec = ProgressiveCodec(quality=90, script=script)
        data = codec.encode(color_image)
        assert codec.n_scans(data) == 4


class TestBaselineCodec:
    def test_roundtrip(self, color_image):
        codec = BaselineCodec(quality=90)
        data = codec.encode(color_image)
        decoded = codec.decode(data)
        assert mse(color_image, decoded) < 400.0

    def test_scan_count_equals_components(self, color_image, gray_image):
        codec = BaselineCodec(quality=90)
        assert codec.n_scans(codec.encode(color_image)) == 3
        assert codec.n_scans(codec.encode(gray_image)) == 1

    def test_partial_read_leaves_holes(self, color_image):
        # Reading only the first scan of a sequential stream decodes only the
        # luma channel; chroma stays flat, so the error is far higher than a
        # progressive scan-1 read of similar size.
        codec = BaselineCodec(quality=90)
        data = codec.encode(color_image)
        partial = codec.decode(data, max_scans=1)
        full = codec.decode(data)
        assert mse(color_image, partial) > mse(color_image, full)

    def test_baseline_and_progressive_sizes_are_close(self, color_image):
        baseline = BaselineCodec(quality=90).encode(color_image)
        progressive = ProgressiveCodec(quality=90).encode(color_image)
        ratio = len(progressive) / len(baseline)
        assert 0.7 < ratio < 1.6


class TestTranscode:
    def test_transcode_is_lossless(self, color_image):
        baseline = BaselineCodec(quality=85).encode(color_image)
        progressive = transcode_to_progressive(baseline)
        assert is_lossless_roundtrip(baseline, progressive)
        assert scan_count(progressive) == 10

    def test_transcode_back_to_sequential(self, color_image):
        baseline = BaselineCodec(quality=85).encode(color_image)
        progressive = transcode_to_progressive(baseline)
        sequential = transcode_to_sequential(progressive)
        assert is_lossless_roundtrip(baseline, sequential)
        assert scan_count(sequential) == 3

    def test_transcode_grayscale(self, gray_image):
        baseline = BaselineCodec(quality=85).encode(gray_image)
        progressive = transcode_to_progressive(baseline)
        assert scan_count(progressive) == 10
        assert is_lossless_roundtrip(baseline, progressive)

    def test_decoded_pixels_identical_after_transcode(self, color_image):
        baseline = BaselineCodec(quality=85).encode(color_image)
        progressive = transcode_to_progressive(baseline)
        a = BaselineCodec().decode(baseline)
        b = ProgressiveCodec().decode(progressive)
        assert np.array_equal(a.pixels, b.pixels)


class TestImageBuffer:
    def test_raw_roundtrip(self, color_image):
        restored = ImageBuffer.from_raw_bytes(color_image.to_raw_bytes())
        assert restored == color_image

    def test_raw_roundtrip_grayscale(self, gray_image):
        restored = ImageBuffer.from_raw_bytes(gray_image.to_raw_bytes())
        assert restored == gray_image

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            ImageBuffer.from_raw_bytes(b"NOPE" + b"\x00" * 16)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            ImageBuffer(np.zeros((4, 4), dtype=np.float32))

    def test_rejects_bad_channel_count(self):
        with pytest.raises(ValueError):
            ImageBuffer(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_from_array_clips(self):
        image = ImageBuffer.from_array(np.array([[-10.0, 300.0], [0.0, 128.4]]))
        assert image.pixels[0, 0] == 0
        assert image.pixels[0, 1] == 255
        assert image.pixels[1, 1] == 128

    def test_grayscale_conversion_weights(self):
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        rgb[..., 1] = 255
        gray = ImageBuffer(rgb).to_grayscale()
        assert gray.pixels[0, 0] == 150  # round(0.587 * 255)
