"""Differential tests: the batched float32 pixel path vs the float64 reference.

The pixel fast path (:mod:`repro.codecs.pixelpath`) reorders floating-point
arithmetic (fused scaled-basis gemm, float32 end to end), so decoded pixels
are allowed to differ from the scalar float64 reference by **at most 1 LSB**
where a value lands on a rounding tie; that budget is pinned here across
every scan group, odd dimensions, grayscale/colour, and both subsampling
modes.  Batch decoding must be *bitwise identical* to a per-image loop —
the batch API reuses buffers, never cross-image arithmetic.

The satellite fixes ride along: ``ImageBuffer.from_array`` dtype fast
paths, the cached ``ImageBuffer.__hash__``, and the exact BT.601 inverse in
``color.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import color, config
from repro.codecs.baseline import BaselineCodec
from repro.codecs.dct import dct_basis_matrix
from repro.codecs.image import ImageBuffer
from repro.codecs.markers import SUBSAMPLING_420, SUBSAMPLING_NONE
from repro.codecs.pixelpath import (
    PixelScratch,
    decode_to_pixels,
    scaled_inverse_basis,
)
from repro.codecs.progressive import (
    ProgressiveCodec,
    decode_coefficients,
    decode_progressive_batch,
)
from repro.codecs.quantization import QuantizationTables


def make_structured_image(size: int = 48, seed: int = 0, color_image: bool = True) -> ImageBuffer:
    """A deterministic image with low- and high-frequency content."""
    rng = np.random.default_rng(seed)
    coordinates = np.linspace(0, 1, size)
    xx, yy = np.meshgrid(coordinates, coordinates)
    base = 128 + 80 * np.sin(4 * np.pi * xx) * np.cos(2 * np.pi * yy)
    texture = 30 * np.sin(24 * np.pi * (xx + 0.3 * yy))
    noise = rng.normal(0, 4, size=(size, size))
    luma = base + texture + noise
    if not color_image:
        return ImageBuffer.from_array(luma)
    rgb = np.stack([luma, 0.7 * luma + 40.0, 220.0 - 0.5 * luma], axis=-1)
    return ImageBuffer.from_array(rgb)


def _max_lsb_delta(a: ImageBuffer, b: ImageBuffer) -> int:
    assert a.pixels.shape == b.pixels.shape
    return int(np.abs(a.pixels.astype(np.int16) - b.pixels.astype(np.int16)).max())


class TestFusedBasis:
    """The scaled-basis operator must reproduce dequantize + IDCT exactly."""

    def test_basis_matches_scipy_idct(self):
        from scipy.fft import idctn

        basis_matrix = dct_basis_matrix()
        rng = np.random.default_rng(0)
        block = rng.standard_normal((8, 8))
        reference = idctn(block, type=2, norm="ortho")
        assert np.allclose(basis_matrix.T @ block @ basis_matrix, reference, atol=1e-12)

    @pytest.mark.parametrize("quality", [35, 75, 90])
    def test_fused_gemm_matches_scalar_stages(self, quality):
        """plane @ basis == merge(idct(dequant(unzigzag(plane)))) within f32 eps."""
        from repro.codecs.dct import inverse_dct_blocks
        from repro.codecs.quantization import dequantize
        from repro.codecs.zigzag import zigzag_to_blocks

        tables = QuantizationTables.for_quality(quality)
        rng = np.random.default_rng(quality)
        plane = rng.integers(-200, 200, size=(12, 64)).astype(np.int32)
        basis = scaled_inverse_basis(tables.luma)
        fused = plane.astype(np.float32) @ basis + 128.0
        scalar = inverse_dct_blocks(dequantize(zigzag_to_blocks(plane), tables.luma))
        assert np.allclose(fused.reshape(12, 8, 8), scalar, atol=0.01)

    def test_basis_cache_returns_same_object(self):
        tables = QuantizationTables.for_quality(60)
        assert scaled_inverse_basis(tables.luma) is scaled_inverse_basis(tables.luma.copy())


class TestScalarParity:
    """Fast decode within 1 LSB of the float64 reference, everywhere."""

    @pytest.mark.parametrize("subsampling", [SUBSAMPLING_420, SUBSAMPLING_NONE])
    @pytest.mark.parametrize("quality", [50, 90])
    def test_color_all_scan_groups(self, subsampling, quality):
        image = make_structured_image(41, seed=7, color_image=True)
        codec = ProgressiveCodec(quality=quality, subsampling=subsampling)
        with config.use_fastpath(True):
            stream = codec.encode(image)
        n_scans = codec.n_scans(stream)
        assert n_scans == 10
        for group in range(1, n_scans + 1):
            with config.use_fastpath(False):
                scalar = codec.decode(stream, max_scans=group)
            with config.use_fastpath(True):
                fast = codec.decode(stream, max_scans=group)
            assert _max_lsb_delta(scalar, fast) <= 1, f"scan group {group}"

    def test_grayscale_all_scan_groups(self):
        image = make_structured_image(40, seed=9, color_image=False)
        codec = ProgressiveCodec(quality=85)
        stream = codec.encode(image)
        for group in range(1, codec.n_scans(stream) + 1):
            with config.use_fastpath(False):
                scalar = codec.decode(stream, max_scans=group)
            with config.use_fastpath(True):
                fast = codec.decode(stream, max_scans=group)
            assert _max_lsb_delta(scalar, fast) <= 1

    @pytest.mark.parametrize("size", [17, 23, 31, 41])
    def test_odd_dimensions_420_padding_edges(self, size):
        """Odd sizes exercise 4:2:0 padding and the upsample crop edges."""
        image = make_structured_image(size, seed=size, color_image=True)
        codec = ProgressiveCodec(quality=80)
        stream = codec.encode(image)
        with config.use_fastpath(False):
            scalar = codec.decode(stream)
        with config.use_fastpath(True):
            fast = codec.decode(stream)
        assert fast.pixels.shape == (size, size, 3)
        assert _max_lsb_delta(scalar, fast) <= 1

    def test_non_square_image(self):
        rng = np.random.default_rng(3)
        image = ImageBuffer.from_array(rng.integers(0, 256, size=(19, 45, 3)))
        codec = ProgressiveCodec(quality=75)
        stream = codec.encode(image)
        with config.use_fastpath(False):
            scalar = codec.decode(stream)
        with config.use_fastpath(True):
            fast = codec.decode(stream)
        assert _max_lsb_delta(scalar, fast) <= 1

    def test_baseline_sequential_parity(self):
        image = make_structured_image(35, seed=2, color_image=True)
        codec = BaselineCodec(quality=70)
        stream = codec.encode(image)
        with config.use_fastpath(False):
            scalar = codec.decode(stream)
        with config.use_fastpath(True):
            fast = codec.decode(stream)
        assert _max_lsb_delta(scalar, fast) <= 1

    def test_random_noise_images(self):
        for seed in range(4):
            rng = np.random.default_rng(seed)
            image = ImageBuffer.from_array(rng.integers(0, 256, size=(33, 33, 3)))
            codec = ProgressiveCodec(quality=90)
            stream = codec.encode(image)
            with config.use_fastpath(False):
                scalar = codec.decode(stream)
            with config.use_fastpath(True):
                fast = codec.decode(stream)
            assert _max_lsb_delta(scalar, fast) <= 1


class TestBatchDecode:
    """decode_progressive_batch must equal the per-image loop bitwise."""

    def test_batch_equals_loop_mixed_shapes(self):
        images = [
            make_structured_image(41, seed=1, color_image=True),
            make_structured_image(24, seed=2, color_image=False),
            make_structured_image(33, seed=3, color_image=True),
            make_structured_image(41, seed=4, color_image=True),
        ]
        codec = ProgressiveCodec(quality=88)
        streams = [codec.encode(image) for image in images]
        with config.use_fastpath(True):
            batch = decode_progressive_batch(streams)
            loop = [codec.decode(stream) for stream in streams]
        for batched, single in zip(batch, loop):
            assert np.array_equal(batched.pixels, single.pixels)

    def test_batch_equals_loop_at_scan_prefix(self):
        images = [make_structured_image(40, seed=s, color_image=True) for s in range(3)]
        codec = ProgressiveCodec(quality=90)
        streams = [codec.encode(image) for image in images]
        for group in (1, 4, 10):
            with config.use_fastpath(True):
                batch = codec.decode_batch(streams, max_scans=group)
                loop = [codec.decode(stream, max_scans=group) for stream in streams]
            for batched, single in zip(batch, loop):
                assert np.array_equal(batched.pixels, single.pixels)

    def test_batch_scalar_path_matches_loop(self):
        """With the fast path off, the batch API is the plain scalar loop."""
        images = [make_structured_image(25, seed=s, color_image=True) for s in range(2)]
        codec = ProgressiveCodec(quality=85)
        streams = [codec.encode(image) for image in images]
        with config.use_fastpath(False):
            batch = decode_progressive_batch(streams)
            loop = [codec.decode(stream) for stream in streams]
        for batched, single in zip(batch, loop):
            assert np.array_equal(batched.pixels, single.pixels)

    def test_scratch_reuse_does_not_leak_between_images(self):
        """Decoding image B after A with one scratch must not change B."""
        image_a = make_structured_image(48, seed=5, color_image=True)
        image_b = make_structured_image(48, seed=6, color_image=True)
        codec = ProgressiveCodec(quality=90)
        coeff_a, _ = decode_coefficients(codec.encode(image_a))
        coeff_b, _ = decode_coefficients(codec.encode(image_b))
        scratch = PixelScratch()
        decode_to_pixels(coeff_a, scratch)
        with_reuse = decode_to_pixels(coeff_b, scratch)
        fresh = decode_to_pixels(coeff_b)
        assert np.array_equal(with_reuse, fresh)

    def test_empty_batch(self):
        assert decode_progressive_batch([]) == []


class TestImageBufferSatellites:
    """from_array dtype fast paths and the cached __hash__."""

    def test_from_array_uint8_skips_float_roundtrip(self):
        array = np.arange(64, dtype=np.uint8).reshape(8, 8)
        image = ImageBuffer.from_array(array)
        assert image.pixels.dtype == np.uint8
        assert np.array_equal(image.pixels, array)
        # writeable input is copied: caller mutations cannot corrupt the
        # frozen buffer (or its cached hash) afterwards
        array[0, 0] = 99
        assert image.pixels[0, 0] == 0

    def test_from_array_uint8_readonly_is_zero_copy(self):
        array = np.arange(64, dtype=np.uint8).reshape(8, 8)
        array.setflags(write=False)
        image = ImageBuffer.from_array(array)
        assert image.pixels is array

    def test_from_array_integer_clips(self):
        array = np.array([[-5, 0], [255, 300]], dtype=np.int32)
        image = ImageBuffer.from_array(array)
        assert np.array_equal(image.pixels, [[0, 0], [255, 255]])

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_from_array_float_rounds_and_clips(self, dtype):
        array = np.array([[-1.2, 0.4], [254.6, 300.0]], dtype=dtype)
        image = ImageBuffer.from_array(array)
        assert np.array_equal(image.pixels, [[0, 0], [255, 255]])
        # round-half-even, matching the old float64 round-trip
        ties = ImageBuffer.from_array(np.array([[0.5, 1.5, 2.5]], dtype=dtype))
        assert ties.pixels.tolist() == [[0, 2, 2]]

    def test_hash_is_cached_and_consistent(self):
        rng = np.random.default_rng(0)
        pixels = rng.integers(0, 256, size=(16, 16, 3)).astype(np.uint8)
        image = ImageBuffer(pixels)
        first = hash(image)
        assert image.__dict__["_hash"] == first  # cached after first call
        assert hash(image) == first
        assert hash(ImageBuffer(pixels.copy())) == first  # equal images, equal hash
        assert image == ImageBuffer(pixels.copy())

    def test_hash_usable_in_sets(self):
        image = ImageBuffer(np.zeros((4, 4), dtype=np.uint8))
        other = ImageBuffer(np.ones((4, 4), dtype=np.uint8))
        assert len({image, other, ImageBuffer(np.zeros((4, 4), dtype=np.uint8))}) == 2


class TestColorSatellite:
    """Exact BT.601 inverse constants, no defensive copies."""

    def test_inverse_matrix_is_exact(self):
        product = color._YCBCR_TO_RGB @ color._RGB_TO_YCBCR
        assert np.allclose(product, np.eye(3), atol=1e-15)

    def test_roundtrip_tight(self):
        rng = np.random.default_rng(1)
        rgb = rng.uniform(0, 255, size=(9, 9, 3))
        back = color.ycbcr_to_rgb(color.rgb_to_ycbcr(rgb))
        assert np.allclose(back, rgb, atol=1e-10)

    def test_ycbcr_to_rgb_does_not_mutate_input(self):
        ycc = np.full((4, 4, 3), 128.0)
        expected = ycc.copy()
        color.ycbcr_to_rgb(ycc)
        assert np.array_equal(ycc, expected)

    def test_known_constants(self):
        matrix = color._YCBCR_TO_RGB
        assert matrix[0, 2] == pytest.approx(1.402)
        assert matrix[2, 1] == pytest.approx(1.772)
        assert matrix[1, 1] == pytest.approx(-0.344136, abs=1e-6)
        assert matrix[1, 2] == pytest.approx(-0.714136, abs=1e-6)


class TestReaderBatchIntegration:
    """The record reader's batch assembly matches per-sample decoding."""

    def test_assemble_batch_matches_single(self, tmp_path):
        from repro.core.dataset import PCRDataset

        rng = np.random.default_rng(0)
        samples = [
            (f"img{i}", ImageBuffer.from_array(rng.integers(0, 256, size=(24, 24, 3))), i % 3)
            for i in range(8)
        ]
        dataset = PCRDataset.build(samples, tmp_path / "pcr", images_per_record=4)
        try:
            codec = ProgressiveCodec(quality=90)
            for record_name in dataset.record_names:
                decoded = dataset.read_record(record_name, decode=True)
                raw = dataset.read_record(record_name, decode=False)
                for sample, undecoded in zip(decoded, raw):
                    assert np.array_equal(
                        sample.image.pixels, codec.decode(undecoded.stream).pixels
                    )
        finally:
            dataset.close()

    def test_assemble_samples_batch_decoded_alignment(self, tmp_path):
        """Multi-record batch assembly keys each image to its own sample.

        Mixed record sizes (3, 3, 1) exercise the cross-record boundary
        bookkeeping with decode=True — a mis-slice would pair record A's
        pixels with record B's metadata.
        """
        from repro.core.dataset import PCRDataset
        from repro.core.reader import assemble_samples, assemble_samples_batch

        rng = np.random.default_rng(4)
        samples = [
            (f"img{i}", ImageBuffer.from_array(rng.integers(0, 256, size=(17, 21, 3))), i)
            for i in range(7)
        ]
        dataset = PCRDataset.build(samples, tmp_path / "pcr", images_per_record=3)
        try:
            reader = dataset.reader
            group = dataset.n_groups
            names = dataset.record_names
            blobs = [reader.read_record_bytes(name, group) for name in names]
            codec = ProgressiveCodec(quality=90)
            batched = assemble_samples_batch(blobs, codec, decode=True)
            assert [len(record) for record in batched] == [3, 3, 1]
            for blob, batch_record in zip(blobs, batched):
                single_record = assemble_samples(blob, codec, decode=True)
                for batch_sample, single_sample in zip(batch_record, single_record):
                    assert batch_sample.metadata.key == single_sample.metadata.key
                    assert batch_sample.stream == single_sample.stream
                    assert np.array_equal(
                        batch_sample.image.pixels, single_sample.image.pixels
                    )
        finally:
            dataset.close()
