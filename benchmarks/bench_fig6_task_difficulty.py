"""Figures 6, 29, 30 — task difficulty vs tolerable compression (Stanford Cars).

Trains real (small) models on the Cars-like synthetic dataset under three
labelings of the SAME stored PCRs — the original fine-grained classes,
"Make-Only" (coarse groups), and the binary "Is-Corvette" task — at scan
groups 1 and baseline, and reports the accuracy gap per task.
"""

from __future__ import annotations

from benchmarks.conftest import print_header
from repro.datasets.labels import is_corvette_mapper, make_only_mapper, n_classes_after
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD

SCAN_GROUPS = (1, 10)
N_EPOCHS = 8


def _accuracy(dataset_view, n_classes, input_size, scan_group, seed=0):
    dataset_view.set_scan_group(scan_group)
    loader = DataLoader(dataset_view, LoaderConfig(batch_size=12, n_workers=1, seed=seed))
    trainer = Trainer(
        LinearProbe(n_classes=n_classes, input_size=input_size, seed=seed),
        SGD(learning_rate=0.2, momentum=0.9, weight_decay=0.0),
    )
    trainer.fit(loader, n_epochs=N_EPOCHS)
    accuracy = trainer.evaluate(loader)
    dataset_view.set_scan_group(dataset_view.n_groups)
    return accuracy


def test_fig6_task_difficulty(benchmark, cars_like):
    dataset, spec = cars_like

    def run():
        tasks = {
            "multiclass": (dataset, spec.n_classes),
            "make-only": (
                dataset.with_label_mapper(make_only_mapper(spec.n_coarse_groups)),
                n_classes_after(make_only_mapper(spec.n_coarse_groups), spec.n_classes),
            ),
            "is-corvette": (
                dataset.with_label_mapper(is_corvette_mapper(spec.n_coarse_groups)),
                2,
            ),
        }
        results = {}
        for task_name, (view, n_classes) in tasks.items():
            results[task_name] = {
                group: _accuracy(view, n_classes, spec.image_size, group)
                for group in SCAN_GROUPS
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figures 6/29/30: accuracy gap between scan group 1 and baseline, per task")
    print(f"{'task':<14}{'classes':>9}{'acc@g1':>9}{'acc@g10':>9}{'gap':>8}")
    gaps = {}
    class_counts = {"multiclass": 12, "make-only": 4, "is-corvette": 2}
    for task_name, accuracies in results.items():
        gap = accuracies[10] - accuracies[1]
        gaps[task_name] = gap
        print(
            f"{task_name:<14}{class_counts[task_name]:>9}{accuracies[1]:>9.3f}"
            f"{accuracies[10]:>9.3f}{gap:>8.3f}"
        )

    # Coarser tasks close the gap (with slack for small-sample noise), and the
    # binary task is learnable even from scan group 1.
    assert gaps["is-corvette"] <= gaps["multiclass"] + 0.10
    assert results["is-corvette"][1] >= 0.5
    assert results["multiclass"][10] > 1.0 / 12  # beats chance at full quality
