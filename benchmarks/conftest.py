"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The underlying
datasets are scaled-down synthetic analogues (see DESIGN.md §2); they are
built once per pytest session and shared across benchmark modules.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.dataset import PCRDataset
from repro.datasets.registry import (
    CARS_SPEC,
    CELEBAHQ_SPEC,
    HAM10000_SPEC,
    IMAGENET_SPEC,
    DatasetSpec,
    generate_dataset,
)

#: Benchmark-scale overrides: enough samples for meaningful statistics while
#: keeping the full harness runnable in minutes on a laptop.
BENCH_SPECS: dict[str, DatasetSpec] = {
    "imagenet": replace(IMAGENET_SPEC, n_samples=64, image_size=48, n_classes=8, images_per_record=16),
    "celebahq": replace(CELEBAHQ_SPEC, n_samples=48, image_size=56, images_per_record=16),
    "ham10000": replace(HAM10000_SPEC, n_samples=48, image_size=64, images_per_record=16),
    "cars": replace(CARS_SPEC, n_samples=48, image_size=48, n_classes=12, n_coarse_groups=4, images_per_record=16),
}

#: Published mean image size for ImageNet (bytes); used to rescale measured
#: per-scan-group ratios to the paper's absolute bandwidth numbers.
PAPER_IMAGENET_MEAN_IMAGE_BYTES = 110_000


def print_header(title: str) -> None:
    """Uniform banner so benchmark output is easy to scan."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture(scope="session")
def bench_datasets(tmp_path_factory) -> dict[str, tuple[PCRDataset, DatasetSpec]]:
    """PCR datasets for all four evaluation datasets, built once per session."""
    datasets: dict[str, tuple[PCRDataset, DatasetSpec]] = {}
    for name, spec in BENCH_SPECS.items():
        directory = tmp_path_factory.mktemp(f"bench-{name}")
        dataset = PCRDataset.build(
            generate_dataset(spec, seed=42),
            directory,
            images_per_record=spec.images_per_record,
            quality=spec.jpeg_quality,
        )
        datasets[name] = (dataset, spec)
    return datasets


@pytest.fixture(scope="session")
def imagenet_like(bench_datasets):
    return bench_datasets["imagenet"]


@pytest.fixture(scope="session")
def cars_like(bench_datasets):
    return bench_datasets["cars"]


@pytest.fixture(scope="session")
def ham_like(bench_datasets):
    return bench_datasets["ham10000"]


@pytest.fixture(scope="session")
def celeba_like(bench_datasets):
    return bench_datasets["celebahq"]


def mean_bytes_by_group(dataset: PCRDataset) -> dict[int, float]:
    """Mean encoded bytes per image at each scan group."""
    n_samples = max(1, len(dataset))
    return {
        group: total / n_samples for group, total in dataset.epoch_bytes_by_group().items()
    }


def rescale_to_paper_sizes(sizes: dict[int, float], full_bytes: float = PAPER_IMAGENET_MEAN_IMAGE_BYTES) -> dict[int, float]:
    """Rescale measured per-group sizes so the full-quality group matches the paper."""
    baseline = sizes[max(sizes)]
    return {group: size * full_bytes / baseline for group, size in sizes.items()}
