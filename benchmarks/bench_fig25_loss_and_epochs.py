"""Figures 25–28 — training loss and accuracy-per-epoch by scan group.

Trains the same model on the Cars-like dataset at scan groups 1, 5, and
baseline and prints the loss and accuracy trajectories per epoch.  The paper's
observation: lower scan groups do not *improve* per-epoch accuracy (compression
is not acting as a regularizer); time-to-accuracy gains come from faster
epochs, not better statistical efficiency.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD

SCAN_GROUPS = (1, 5, 10)
N_EPOCHS = 8


def test_fig25_loss_and_accuracy_per_epoch(benchmark, cars_like):
    dataset, spec = cars_like

    def run():
        histories = {}
        for group in SCAN_GROUPS:
            dataset.set_scan_group(group)
            loader = DataLoader(dataset, LoaderConfig(batch_size=12, n_workers=1, seed=9))
            trainer = Trainer(
                LinearProbe(n_classes=spec.n_classes, input_size=spec.image_size, seed=4),
                SGD(learning_rate=0.02, momentum=0.9, weight_decay=0.0),
            )
            trainer.fit(loader, n_epochs=N_EPOCHS, test_loader=loader, scan_group=group)
            histories[group] = trainer.history
        dataset.set_scan_group(dataset.n_groups)
        return histories

    histories = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figures 25-28: train loss / test accuracy per epoch, by scan group")
    print(f"{'epoch':>6}" + "".join(f"{f'loss g{g}':>10}" for g in SCAN_GROUPS)
          + "".join(f"{f'acc g{g}':>9}" for g in SCAN_GROUPS))
    for epoch in range(N_EPOCHS):
        row = f"{epoch:>6}"
        for group in SCAN_GROUPS:
            row += f"{histories[group].epochs[epoch].train_loss:>10.3f}"
        for group in SCAN_GROUPS:
            row += f"{histories[group].epochs[epoch].test_accuracy:>9.3f}"
        print(row)

    # Loss improves over its starting value for every group; the baseline's
    # final accuracy is at least as good as scan group 1's (no regularization
    # benefit from compression), within small-sample noise.
    for group in SCAN_GROUPS:
        losses = [e.train_loss for e in histories[group].epochs]
        assert min(losses) < losses[0]
        assert np.all(np.isfinite(losses))
    assert (
        histories[10].final_test_accuracy
        >= histories[1].final_test_accuracy - 0.25
    )
