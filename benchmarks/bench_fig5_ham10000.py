"""Figure 5 — HAM10000 time-to-accuracy (ResNet vs ShuffleNet).

HAM10000 has the largest images of the four datasets and is therefore the
most bandwidth-bound; the paper reports the biggest loader-side gains here.
"""

from __future__ import annotations

from benchmarks.conftest import mean_bytes_by_group, print_header
from repro.simulate.trainer_sim import ClusterSpec, TrainingSimulator, mssim_degraded_accuracy

SCAN_GROUPS = (1, 2, 5, 10)
#: HAM10000 mean image size is ~287 kB at full quality (Figure 31 examples).
PAPER_HAM_FULL_BYTES = 250_000
BASELINE_ACCURACY = 0.80
N_IMAGES = 8_012 * 20  # scaled epoch count proxy so epochs take meaningful time


def test_fig5_ham10000_time_to_accuracy(benchmark, ham_like):
    dataset, spec = ham_like

    def run():
        measured = mean_bytes_by_group(dataset)
        scale = PAPER_HAM_FULL_BYTES / measured[dataset.n_groups]
        sizes = {group: measured[group] * scale for group in SCAN_GROUPS}
        results = {}
        for model_name, cluster, sensitivity in (
            ("resnet18", ClusterSpec.paper_resnet(), 0.1),
            ("shufflenetv2", ClusterSpec.paper_shufflenet(), 0.8),
        ):
            finals = {
                group: mssim_degraded_accuracy(BASELINE_ACCURACY, 1.0 - 0.05 * (10 - group) / 9, sensitivity)
                for group in SCAN_GROUPS
            }
            simulator = TrainingSimulator(cluster, n_train_images=N_IMAGES, eval_every_epochs=5)
            results[model_name] = (simulator.compare_scan_groups(sizes, finals, n_epochs=150),
                                   simulator.speedup_table(sizes))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 5: HAM10000 time-to-accuracy / loader speedups")
    for model_name, (runs, speedups) in results.items():
        print(f"\n{model_name}:")
        print(f"{'group':>6}{'img/s':>10}{'epoch (s)':>12}{'final acc':>11}{'speedup':>9}")
        for group in sorted(runs):
            run = runs[group]
            print(
                f"{group:>6}{run.images_per_second:>10.0f}{run.epoch_seconds:>12.1f}"
                f"{run.final_accuracy:>11.3f}{speedups[group]:>9.2f}"
            )

    # Paper shape: ResNet tolerates low scans (flat accuracy), ShuffleNet needs
    # at least scan 5; large HAM images mean clear speedups for lower groups.
    resnet_runs, resnet_speedups = results["resnet18"]
    shuffle_runs, _ = results["shufflenetv2"]
    assert resnet_runs[1].final_accuracy > 0.95 * resnet_runs[10].final_accuracy
    assert shuffle_runs[1].final_accuracy < shuffle_runs[5].final_accuracy
    assert resnet_speedups[5] > 1.5
