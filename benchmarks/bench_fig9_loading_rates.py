"""Figure 9 — training image rates per dataset, scan group, and model.

Applies the pipeline bound min(compute rate, bandwidth / bytes-per-image)
using measured per-group sizes rescaled to each dataset's published image
sizes, for both the ResNet and ShuffleNet cluster configurations.
"""

from __future__ import annotations

from benchmarks.conftest import mean_bytes_by_group, print_header
from repro.simulate.trainer_sim import ClusterSpec, TrainingSimulator

SCAN_GROUPS = (1, 2, 5, 10)
#: Approximate full-quality mean image sizes (bytes) from §A.4 / Figure 31.
PAPER_FULL_BYTES = {"imagenet": 110_000, "celebahq": 85_000, "ham10000": 250_000, "cars": 95_000}
#: In-memory (cached, decoded) rates from §4.6 / §A.5.
IN_MEMORY_RATES = {"resnet18": 4240.0, "shufflenetv2": 7180.0}


def test_fig9_image_loading_rates(benchmark, bench_datasets):
    def run():
        results = {}
        for model_name, cluster in (
            ("resnet18", ClusterSpec.paper_resnet()),
            ("shufflenetv2", ClusterSpec.paper_shufflenet()),
        ):
            simulator = TrainingSimulator(cluster, n_train_images=1)
            for dataset_name, (dataset, _) in bench_datasets.items():
                measured = mean_bytes_by_group(dataset)
                scale = PAPER_FULL_BYTES[dataset_name] / measured[dataset.n_groups]
                rates = {
                    group: simulator.images_per_second(measured[group] * scale)
                    for group in SCAN_GROUPS
                }
                results[(model_name, dataset_name)] = rates
        return results

    results = benchmark(run)

    for model_name in ("resnet18", "shufflenetv2"):
        print_header(f"Figure 9: training rates (images/s), {model_name}")
        print(f"{'dataset':<12}" + "".join(f"{f'scan {g}':>10}" for g in SCAN_GROUPS) + f"{'RAM':>10}")
        for dataset_name in ("imagenet", "celebahq", "ham10000", "cars"):
            rates = results[(model_name, dataset_name)]
            print(
                f"{dataset_name:<12}"
                + "".join(f"{rates[g]:>10.0f}" for g in SCAN_GROUPS)
                + f"{IN_MEMORY_RATES[model_name]:>10.0f}"
            )

    # Observation 6: rates rise as scans are reduced; HAM10000 (largest
    # images) is the most bandwidth bound; ShuffleNet achieves higher rates.
    for key, rates in results.items():
        ordered = [rates[g] for g in SCAN_GROUPS]
        assert all(ordered[i] >= ordered[i + 1] - 1e-6 for i in range(len(ordered) - 1))
    assert results[("shufflenetv2", "imagenet")][1] > results[("resnet18", "imagenet")][10]
    assert results[("shufflenetv2", "ham10000")][10] < results[("shufflenetv2", "imagenet")][10]
