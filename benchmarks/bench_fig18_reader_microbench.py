"""Figure 18 — PCR reader microbenchmark: throughput per scan on a simulated SSD.

Left panel: measured images/second at each scan group when records are read
from a 400 MB/s SSD model.  Middle panel: throughput predicted purely from
the mean size ratios (Theorem A.5).  Right panel: per-record (batch) read
latencies, which spike as more scans saturate the drive.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import mean_bytes_by_group, print_header
from repro.simulate.throughput import predicted_throughput_by_scan
from repro.storage.device import SSD_PROFILE, BlockDevice
from repro.storage.filesystem import SimulatedFilesystem

INFLATION = 128  # make simulated records large enough for transfer-dominated reads


def _measured_rates(dataset):
    filesystem = SimulatedFilesystem(BlockDevice(SSD_PROFILE))
    for name in dataset.record_names:
        size = dataset.reader.record_index(name).total_bytes * INFLATION
        filesystem.write_file(name, b"d" * size)
    images_per_record = len(dataset) / len(dataset.record_names)
    rates = {}
    batch_latencies = {}
    for group in range(1, dataset.n_groups + 1):
        filesystem.device.reset_position()
        latencies = []
        for name in dataset.record_names:
            length = dataset.reader.bytes_for_group(name, group) * INFLATION
            _, latency = filesystem.read_file(name, length=length)
            latencies.append(latency)
        total = sum(latencies)
        rates[group] = len(dataset) / total
        batch_latencies[group] = float(np.mean(latencies))
    del images_per_record
    return rates, batch_latencies


def test_fig18_reader_microbenchmark(benchmark, celeba_like):
    dataset, _ = celeba_like

    def run():
        measured, batch_latencies = _measured_rates(dataset)
        sizes = mean_bytes_by_group(dataset)
        predicted = predicted_throughput_by_scan(sizes, measured[dataset.n_groups])
        return measured, predicted, batch_latencies

    measured, predicted, batch_latencies = benchmark(run)

    print_header("Figure 18: reader microbenchmark on a simulated 400 MB/s SSD (CelebA-HQ-like)")
    print(f"{'scan':>5}{'measured img/s':>16}{'predicted img/s':>17}{'batch time (ms)':>17}")
    for group in sorted(measured):
        print(
            f"{group:>5}{measured[group]:>16.0f}{predicted[group]:>17.0f}"
            f"{batch_latencies[group] * 1e3:>17.3f}"
        )
    ratio_1_vs_full = measured[1] / measured[max(measured)]
    print(f"\nscan-1 over full-quality throughput: {ratio_1_vs_full:.1f}x "
          "(paper reports ~7x for ImageNet-scale images)")

    # Measured and size-ratio-predicted throughput agree closely (within 20%),
    # and throughput decreases monotonically with more scans.
    for group in measured:
        assert abs(measured[group] - predicted[group]) / predicted[group] < 0.25
    ordered = [measured[g] for g in sorted(measured)]
    assert all(ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1))
    assert ratio_1_vs_full > 3.0
    # Batch latencies grow with scan count (latency spikes at high scans).
    assert batch_latencies[max(measured)] > batch_latencies[1]
