"""Throughput, failover, and cache behaviour of the sharded PCR serving cluster.

Builds a synthetic PCR dataset, launches :class:`ClusterCoordinator`
fleets on localhost, and measures:

* ``shard_scaling`` — single-client and multi-threaded aggregate fetch
  throughput against clusters of 1, 2, and 4 shards (one replica each);
* ``failover`` — per-request latency before a replica kill, the latency of
  the first request that discovers the dead replica (cold failover: connect
  failure + reroute), and of requests after the endpoint is in cooldown
  (warm failover: healthy replica tried first);
* ``per_shard_containment`` — each shard's scan-prefix cache hit rates
  after an epoch at the top scan group followed by epochs at every lower
  group: lower-group requests must be served by slicing cached prefixes on
  whichever shard owns the record.

Results go to ``BENCH_cluster.json``:

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick

or through pytest (smoke assertions only, no JSON):

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.dataset import PCRDataset
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec
from repro.serving.cluster import ClusterClient, ClusterCoordinator

_MB = 1024.0 * 1024.0


def _build_dataset(workdir: str, n_samples: int, image_size: int, per_record: int) -> PCRDataset:
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=13
    )
    samples = generator.generate_batch(n_samples, seed=13)
    return PCRDataset.build(samples, workdir, images_per_record=per_record, quality=90)


def _fetch_epoch(client: ClusterClient, names: list[str], group: int) -> int:
    total = 0
    for name in names:
        total += len(client.get_record_bytes(name, group))
    return total


def _bench_shard_scaling(
    directory: Path,
    names: list[str],
    n_groups: int,
    shard_counts: list[int],
    trials: int,
    n_threads: int,
) -> dict:
    out: dict[str, dict] = {}
    for n_shards in shard_counts:
        with ClusterCoordinator(directory, n_shards=n_shards, n_replicas=1) as cluster:
            with ClusterClient(cluster.shard_map) as client:
                start = time.perf_counter()
                epoch_bytes = _fetch_epoch(client, names, n_groups)
                cold_seconds = time.perf_counter() - start
                warm = []
                for _ in range(trials):
                    start = time.perf_counter()
                    _fetch_epoch(client, names, n_groups)
                    warm.append(time.perf_counter() - start)

                # Aggregate throughput: several threads sharing the routing
                # client, load spread across the shard fleet.
                def fetch_thread() -> None:
                    _fetch_epoch(client, names, n_groups)

                threads = [
                    threading.Thread(target=fetch_thread) for _ in range(n_threads)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                aggregate_seconds = time.perf_counter() - start
                stats = cluster.stats()
        out[str(n_shards)] = {
            "epoch_bytes": epoch_bytes,
            "cold_mb_per_s": epoch_bytes / _MB / cold_seconds,
            "warm_mb_per_s": epoch_bytes / _MB / min(warm),
            "warm_records_per_s": len(names) / min(warm),
            "aggregate_threads": n_threads,
            "aggregate_mb_per_s": n_threads * epoch_bytes / _MB / aggregate_seconds,
            "cluster_cache_hit_rate": stats["cluster"]["cache_hit_rate"],
            "records_per_shard": {
                shard_id: shard["n_records"] for shard_id, shard in stats["shards"].items()
            },
        }
    return out


def _bench_failover(directory: Path, n_groups: int, trials: int) -> dict:
    """Latency of requests around a replica kill (2 shards x 2 replicas)."""
    with ClusterCoordinator(directory, n_shards=2, n_replicas=2) as cluster:
        with ClusterClient(cluster.shard_map, cooldown_seconds=30.0) as client:
            shard_id = max(
                cluster.shard_map.shard_ids, key=lambda s: len(cluster.assignment(s))
            )
            name = cluster.assignment(shard_id)[0]
            baseline, cold, warm = [], [], []
            for _ in range(trials):
                client.get_record_bytes(name, n_groups)  # connections warm
                start = time.perf_counter()
                client.get_record_bytes(name, n_groups)
                baseline.append(time.perf_counter() - start)

                preferred = cluster.shard_map.owners(name)[0]
                cluster.stop_replica(preferred.shard_id, preferred.replica_index)
                start = time.perf_counter()
                client.get_record_bytes(name, n_groups)  # discovers the corpse
                cold.append(time.perf_counter() - start)
                start = time.perf_counter()
                client.get_record_bytes(name, n_groups)  # cooldown: healthy first
                warm.append(time.perf_counter() - start)

                cluster.restart_replica(preferred.shard_id, preferred.replica_index)
                client._mark_up(preferred)  # lift the cooldown for the next trial
            failovers = client.failovers
    return {
        "trials": trials,
        "baseline_ms": statistics.median(baseline) * 1e3,
        "cold_failover_ms": statistics.median(cold) * 1e3,
        "warm_failover_ms": statistics.median(warm) * 1e3,
        "cold_failover_overhead_x": statistics.median(cold) / statistics.median(baseline),
        "client_failovers": failovers,
    }


def _bench_per_shard_containment(directory: Path, names: list[str], n_groups: int) -> dict:
    """Populate every shard cache at the top group, then sweep lower groups."""
    with ClusterCoordinator(directory, n_shards=4, n_replicas=1) as cluster:
        with ClusterClient(cluster.shard_map) as client:
            for name in names:
                client.get_record_bytes(name, n_groups)
            for group in range(1, n_groups):
                for name in names:
                    client.get_record_bytes(name, group)
            stats = cluster.stats()
    per_shard: dict[str, dict] = {}
    for shard_id, shard in stats["shards"].items():
        replica = shard["replicas"]["0"]
        cache = replica["cache"]
        per_shard[shard_id] = {
            "n_records": shard["n_records"],
            "prefix_hits": cache["prefix_hits"],
            "misses": cache["misses"],
            "prefix_hit_rate": cache["prefix_hit_rate"],
            "hit_rate": cache["hit_rate"],
        }
    return {
        "populate_group": n_groups,
        "lower_group_requests": len(names) * (n_groups - 1),
        "cluster_hit_rate": stats["cluster"]["cache_hit_rate"],
        "per_shard": per_shard,
    }


def run_benchmark(
    n_samples: int = 96,
    image_size: int = 64,
    images_per_record: int = 8,
    trials: int = 3,
    shard_counts: list[int] | None = None,
    n_threads: int = 4,
) -> dict:
    shard_counts = shard_counts if shard_counts is not None else [1, 2, 4]
    with tempfile.TemporaryDirectory(prefix="pcr-cluster-bench-") as workdir:
        dataset = _build_dataset(workdir, n_samples, image_size, images_per_record)
        directory = dataset.reader.directory
        names = dataset.record_names
        n_groups = dataset.n_groups
        results = {
            "params": {
                "n_samples": n_samples,
                "image_size": image_size,
                "images_per_record": images_per_record,
                "n_records": len(names),
                "n_groups": n_groups,
                "trials": trials,
                "shard_counts": shard_counts,
            },
            "shard_scaling": _bench_shard_scaling(
                directory, names, n_groups, shard_counts, trials, n_threads
            ),
            "failover": _bench_failover(directory, n_groups, trials),
            "per_shard_containment": _bench_per_shard_containment(
                directory, names, n_groups
            ),
        }
        dataset.close()
    return results


def print_report(results: dict) -> None:
    print("=" * 74)
    print("PCR sharded serving cluster benchmark")
    print("=" * 74)
    params = results["params"]
    print(
        f"{params['n_records']} records, {params['n_samples']} samples, "
        f"{params['n_groups']} scan groups"
    )
    print("-" * 74)
    print("shard scaling (single client warm / multi-thread aggregate):")
    for n_shards, row in results["shard_scaling"].items():
        print(
            f"  {n_shards} shard(s)  warm {row['warm_mb_per_s']:8.2f} MB/s   "
            f"aggregate({row['aggregate_threads']} thr) "
            f"{row['aggregate_mb_per_s']:8.2f} MB/s"
        )
    failover = results["failover"]
    print(
        f"failover latency:   baseline {failover['baseline_ms']:.2f} ms   "
        f"cold {failover['cold_failover_ms']:.2f} ms "
        f"({failover['cold_failover_overhead_x']:.1f}x)   "
        f"warm {failover['warm_failover_ms']:.2f} ms"
    )
    containment = results["per_shard_containment"]
    print(
        f"containment after a group-{containment['populate_group']} epoch "
        f"(cluster hit rate {containment['cluster_hit_rate']:.2f}):"
    )
    for shard_id, row in sorted(containment["per_shard"].items()):
        print(
            f"  {shard_id}: {row['n_records']:2d} records   "
            f"prefix hits {row['prefix_hits']:4d}   "
            f"prefix hit rate {row['prefix_hit_rate']:.2f}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload, fewer trials")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cluster.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        results = run_benchmark(
            n_samples=24, image_size=32, images_per_record=4, trials=2,
            shard_counts=[1, 2], n_threads=2,
        )
    else:
        results = run_benchmark()
    print_report(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


def test_cluster_bench_smoke():
    """Tier-2 smoke: scaling runs, failover reroutes, shards serve containment hits."""
    results = run_benchmark(
        n_samples=16, image_size=32, images_per_record=4, trials=1,
        shard_counts=[1, 2], n_threads=2,
    )
    assert set(results["shard_scaling"]) == {"1", "2"}
    for row in results["shard_scaling"].values():
        assert row["warm_mb_per_s"] > 0
    failover = results["failover"]
    assert failover["client_failovers"] >= 1
    assert failover["cold_failover_ms"] > 0
    containment = results["per_shard_containment"]
    served_shards = [
        row for row in containment["per_shard"].values() if row["n_records"] > 0
    ]
    assert served_shards
    for row in served_shards:
        assert row["prefix_hit_rate"] > 0
    print_report(results)


if __name__ == "__main__":
    sys.exit(main())
