"""Closed-loop autotune benchmark: the controller against degraded serving.

Exercises the :mod:`repro.control` feedback loop end to end — real server,
real wire telemetry, real ``DataLoader`` — under the failure scenarios the
controller exists for, each with the controller ON vs OFF:

* ``capped_link`` — one trainer behind a bandwidth-capped link
  (:class:`~repro.pipeline.stall.BandwidthThrottle`): the controller must
  converge the scan group down within a bounded number of control
  intervals and hold a lower steady-state stall fraction than the
  uncontrolled run, then converge back up when the cap lifts;
* ``mixed_fidelity_fleet`` — three trainers with different link budgets
  steered by one controller: each converges to its own fidelity;
* ``degraded_replica`` — a sharded cluster that loses one replica per
  shard mid-run while its effective link degrades: the fleet-wide cluster
  controller steers down through the same failover path the loader reads
  through.

Results are merged into ``BENCH_serving.json`` as an ``autotune`` section:

    PYTHONPATH=src python benchmarks/bench_autotune.py
    PYTHONPATH=src python benchmarks/bench_autotune.py --quick

or through pytest (quick-mode smoke assertions only, no JSON):

    PYTHONPATH=src python -m pytest benchmarks/bench_autotune.py -q
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.control import AdaptiveScanGroupSource, StallTargetPolicy
from repro.core.dataset import PCRDataset
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.pipeline.stall import BandwidthThrottle
from repro.serving.cluster.coordinator import ClusterCoordinator
from repro.serving.cluster.remote_source import ShardedRemoteRecordSource
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer


def _build_dataset(workdir: str, n_samples: int, image_size: int, per_record: int) -> PCRDataset:
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=11
    )
    samples = generator.generate_batch(n_samples, seed=11)
    return PCRDataset.build(samples, workdir, images_per_record=per_record, quality=90)


def _policy() -> StallTargetPolicy:
    return StallTargetPolicy(
        target_stall_fraction=0.2, hysteresis=0.5, cooldown_intervals=0
    )


class _Trainer:
    """One training client: an adaptive source + loader + compute budget."""

    def __init__(self, source: AdaptiveScanGroupSource, batch_size: int,
                 compute_seconds_per_batch: float) -> None:
        self.source = source
        self.loader = DataLoader(
            source, LoaderConfig(batch_size=batch_size, n_workers=1, shuffle=False)
        )
        self.compute_seconds_per_batch = compute_seconds_per_batch
        self.intervals: list[dict] = []

    def run_interval(self, controller=None) -> dict:
        """One control interval: an epoch of 'training', then report/steer."""
        stalls = self.loader.stalls
        stats = self.source.stats
        wait0, compute0 = stalls.total_wait, stalls.total_compute
        bytes0, samples0 = stats.bytes_read, stats.samples_decoded
        start = time.perf_counter()
        for _ in self.loader.epoch():
            time.sleep(self.compute_seconds_per_batch)
        elapsed = time.perf_counter() - start
        self.source.report_now()
        if controller is not None:
            controller.step()
            self.source.report_now()  # pick up the hint the step published
        wait = stalls.total_wait - wait0
        compute = stalls.total_compute - compute0
        n_bytes = stats.bytes_read - bytes0
        n_samples = stats.samples_decoded - samples0
        row = {
            "scan_group": self.source.scan_group,
            "stall_fraction": wait / (wait + compute) if wait + compute else 0.0,
            "bytes_per_sample": n_bytes / n_samples if n_samples else 0.0,
            "epoch_seconds": elapsed,
        }
        self.intervals.append(row)
        return row

    def steady_state(self, last_k: int) -> dict:
        rows = self.intervals[-last_k:]
        return {
            "stall_fraction": statistics.mean(r["stall_fraction"] for r in rows),
            "bytes_per_sample": statistics.mean(r["bytes_per_sample"] for r in rows),
            "scan_group": rows[-1]["scan_group"],
        }


def _direction_changes(switches: list[dict]) -> int:
    directions = [s["direction"] for s in switches]
    return sum(1 for a, b in zip(directions, directions[1:]) if a != b)


def _capped_rate(source, compute_budget_seconds: float, pressure: float = 4.0) -> float:
    """A link rate that makes a full-fidelity epoch ``pressure``× the compute
    budget — saturated at high groups, comfortable at low ones."""
    return source.epoch_bytes() / (pressure * compute_budget_seconds)


def _bench_capped_link(
    directory: Path,
    n_intervals: int,
    steady_k: int,
    batch_size: int,
    compute_seconds: float,
    recovery_intervals: int,
) -> dict:
    out: dict[str, dict] = {}
    for arm in ("controller_off", "controller_on"):
        with PCRRecordServer(directory, port=0) as server:
            controller = None
            if arm == "controller_on":
                controller = server.start_controller(policy=_policy(), auto_start=False)
            throttle = BandwidthThrottle(None)
            with AdaptiveScanGroupSource(
                RemoteRecordSource(port=server.port),
                client_id="trainer",
                report_interval=3600.0,
                throttle=throttle,
            ) as source:
                n_groups = source.n_groups
                batches = max(1, len(source) // batch_size)
                compute_budget = batches * compute_seconds
                throttle.set_rate(_capped_rate(source, compute_budget))
                trainer = _Trainer(source, batch_size, compute_seconds)
                for _ in range(n_intervals):
                    trainer.run_interval(controller)
                steady = trainer.steady_state(steady_k)
                result = {
                    "n_intervals": n_intervals,
                    "n_groups": n_groups,
                    "link_bytes_per_s": throttle.bytes_per_s,
                    "steady_state": steady,
                    "trajectory": [r["scan_group"] for r in trainer.intervals],
                    "stall_by_interval": [
                        round(r["stall_fraction"], 4) for r in trainer.intervals
                    ],
                }
                if controller is not None:
                    switches = controller.switch_log()
                    result["intervals_to_converge"] = (
                        switches[-1]["interval"] + 1 if switches else 0
                    )
                    result["direction_changes"] = _direction_changes(switches)
                    # Recovery: lift the cap, the loop must converge back up.
                    throttle.set_rate(None)
                    for _ in range(recovery_intervals):
                        trainer.run_interval(controller)
                        if source.scan_group == n_groups:
                            break
                    result["recovery"] = {
                        "recovered_group": source.scan_group,
                        "recovered_to_full": source.scan_group == n_groups,
                        "direction_changes_total": _direction_changes(
                            controller.switch_log()
                        ),
                        "decision_log_tail": controller.switch_log()[-4:],
                    }
                out[arm] = result
    on = out["controller_on"]["steady_state"]
    off = out["controller_off"]["steady_state"]
    out["stall_improvement"] = round(
        off["stall_fraction"] - on["stall_fraction"], 4
    )
    out["bytes_per_sample_ratio"] = round(
        on["bytes_per_sample"] / off["bytes_per_sample"], 4
    ) if off["bytes_per_sample"] else 0.0
    return out


def _bench_mixed_fleet(
    directory: Path,
    n_intervals: int,
    steady_k: int,
    batch_size: int,
    compute_seconds: float,
) -> dict:
    """Three trainers with different link budgets, one controller."""
    with PCRRecordServer(directory, port=0) as server:
        controller = server.start_controller(policy=_policy(), auto_start=False)
        trainers: dict[str, _Trainer] = {}
        sources: list[AdaptiveScanGroupSource] = []
        try:
            probe = RemoteRecordSource(port=server.port)
            batches = max(1, len(probe) // batch_size)
            compute_budget = batches * compute_seconds
            saturated = _capped_rate(probe, compute_budget)
            probe.close()
            for name, rate in (
                ("starved", saturated),        # full fidelity 4x over budget
                ("midband", saturated * 2.5),  # mid groups fit
                ("fat_pipe", None),            # uncapped: full fidelity fits
            ):
                source = AdaptiveScanGroupSource(
                    RemoteRecordSource(port=server.port),
                    client_id=name,
                    report_interval=3600.0,
                    throttle=BandwidthThrottle(rate),
                )
                sources.append(source)
                trainers[name] = _Trainer(source, batch_size, compute_seconds)
            for _ in range(n_intervals):
                # Every client trains and reports, then one fleet-wide step
                # steers them all — the controller sees the whole fleet.
                for trainer in trainers.values():
                    for _ in trainer.loader.epoch():
                        time.sleep(trainer.compute_seconds_per_batch)
                    trainer.source.report_now()
                controller.step()
                for trainer in trainers.values():
                    trainer.source.report_now()
                    trainer.intervals.append(
                        {"scan_group": trainer.source.scan_group}
                    )
            per_client = {
                name: {
                    "final_group": trainer.source.scan_group,
                    "trajectory": [r["scan_group"] for r in trainer.intervals],
                }
                for name, trainer in trainers.items()
            }
            groups = sorted(row["final_group"] for row in per_client.values())
            return {
                "n_intervals": n_intervals,
                "clients": per_client,
                "distinct_fidelities": len(set(groups)),
                "clients_tracked": len(controller.states()),
                "cache_admission_bias": server.cache.stats()["admission_bias"],
            }
        finally:
            for source in sources:
                source.close()


def _bench_degraded_replica(
    directory: Path,
    n_intervals: int,
    steady_k: int,
    batch_size: int,
    compute_seconds: float,
) -> dict:
    """A cluster loses one replica per shard while its link degrades."""
    out: dict[str, dict] = {}
    for arm in ("controller_off", "controller_on"):
        with ClusterCoordinator(directory, n_shards=2, n_replicas=2) as cluster:
            controller = None
            if arm == "controller_on":
                controller = cluster.start_controller(policy=_policy(), auto_start=False)
            throttle = BandwidthThrottle(None)
            with AdaptiveScanGroupSource(
                ShardedRemoteRecordSource(cluster.shard_map, failover_rounds=3),
                client_id="trainer",
                report_interval=3600.0,
                throttle=throttle,
            ) as source:
                batches = max(1, len(source) // batch_size)
                compute_budget = batches * compute_seconds
                trainer = _Trainer(source, batch_size, compute_seconds)
                healthy = trainer.run_interval(controller)
                # Degrade: one replica of every shard dies and the surviving
                # path's effective bandwidth collapses.
                for shard_id in cluster.shard_map.shard_ids:
                    cluster.stop_replica(shard_id, 1)
                throttle.set_rate(_capped_rate(source, compute_budget))
                for _ in range(n_intervals):
                    trainer.run_interval(controller)
                result = {
                    "healthy_interval": healthy,
                    "degraded_steady_state": trainer.steady_state(steady_k),
                    "trajectory": [r["scan_group"] for r in trainer.intervals],
                    "live_replicas": len(cluster.live_replicas()),
                }
                if controller is not None:
                    result["direction_changes"] = _direction_changes(
                        controller.switch_log()
                    )
                out[arm] = result
    on = out["controller_on"]["degraded_steady_state"]
    off = out["controller_off"]["degraded_steady_state"]
    out["stall_improvement"] = round(off["stall_fraction"] - on["stall_fraction"], 4)
    return out


def run_benchmark(
    n_samples: int = 48,
    image_size: int = 48,
    images_per_record: int = 8,
    n_intervals: int = 8,
    steady_k: int = 3,
    batch_size: int = 8,
    compute_seconds: float = 0.05,
    recovery_intervals: int = 14,
    scenarios: tuple[str, ...] = ("capped_link", "mixed_fidelity_fleet", "degraded_replica"),
) -> dict:
    with tempfile.TemporaryDirectory(prefix="pcr-autotune-bench-") as workdir:
        dataset = _build_dataset(workdir, n_samples, image_size, images_per_record)
        directory = dataset.reader.directory
        results: dict = {
            "params": {
                "n_samples": n_samples,
                "image_size": image_size,
                "images_per_record": images_per_record,
                "n_records": len(dataset.record_names),
                "n_groups": dataset.n_groups,
                "n_intervals": n_intervals,
                "steady_k": steady_k,
                "compute_seconds_per_batch": compute_seconds,
                "policy": "stall_target(target=0.2, hysteresis=0.5, aimd=0.5x/+1)",
            }
        }
        if "capped_link" in scenarios:
            results["capped_link"] = _bench_capped_link(
                directory, n_intervals, steady_k, batch_size, compute_seconds,
                recovery_intervals,
            )
        if "mixed_fidelity_fleet" in scenarios:
            results["mixed_fidelity_fleet"] = _bench_mixed_fleet(
                directory, n_intervals, steady_k, batch_size, compute_seconds
            )
        if "degraded_replica" in scenarios:
            results["degraded_replica"] = _bench_degraded_replica(
                directory, max(3, n_intervals // 2), steady_k, batch_size,
                compute_seconds,
            )
        dataset.close()
    return results


def print_report(results: dict) -> None:
    print("=" * 74)
    print("PCR adaptive-fidelity (autotune) benchmark")
    print("=" * 74)
    params = results["params"]
    print(
        f"{params['n_records']} records, {params['n_samples']} samples, "
        f"{params['n_groups']} scan groups; policy {params['policy']}"
    )
    if "capped_link" in results:
        capped = results["capped_link"]
        on, off = capped["controller_on"], capped["controller_off"]
        print("-" * 74)
        print("capped link (controller on vs off):")
        print(f"  off: stall {off['steady_state']['stall_fraction']:.2f}  "
              f"{off['steady_state']['bytes_per_sample']:.0f} B/sample  "
              f"group {off['steady_state']['scan_group']}")
        print(f"  on:  stall {on['steady_state']['stall_fraction']:.2f}  "
              f"{on['steady_state']['bytes_per_sample']:.0f} B/sample  "
              f"group {on['steady_state']['scan_group']}  "
              f"(converged in {on['intervals_to_converge']} intervals, "
              f"{on['direction_changes']} direction changes)")
        recovery = on["recovery"]
        print(f"  recovery after uncap: group {recovery['recovered_group']} "
              f"(full fidelity: {recovery['recovered_to_full']}, "
              f"{recovery['direction_changes_total']} direction changes total)")
        print(f"  stall improvement: {capped['stall_improvement']:+.2f}  "
              f"bytes/sample ratio on/off: {capped['bytes_per_sample_ratio']:.2f}")
    if "mixed_fidelity_fleet" in results:
        fleet = results["mixed_fidelity_fleet"]
        print("-" * 74)
        print(f"mixed-fidelity fleet ({fleet['clients_tracked']} clients, "
              f"{fleet['distinct_fidelities']} distinct fidelities, "
              f"cache bias {fleet['cache_admission_bias']}):")
        for name, row in fleet["clients"].items():
            print(f"  {name:>9s}: group {row['final_group']:>2d}  "
                  f"trajectory {row['trajectory']}")
    if "degraded_replica" in results:
        degraded = results["degraded_replica"]
        on, off = degraded["controller_on"], degraded["controller_off"]
        print("-" * 74)
        print("degraded replica (cluster loses 1 replica/shard, link collapses):")
        print(f"  off: degraded stall {off['degraded_steady_state']['stall_fraction']:.2f}  "
              f"group {off['degraded_steady_state']['scan_group']}")
        print(f"  on:  degraded stall {on['degraded_steady_state']['stall_fraction']:.2f}  "
              f"group {on['degraded_steady_state']['scan_group']}  "
              f"({on['direction_changes']} direction changes)")
        print(f"  stall improvement: {degraded['stall_improvement']:+.2f}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload, fewer intervals")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="JSON file to merge the 'autotune' section into",
    )
    args = parser.parse_args(argv)
    if args.quick:
        results = run_benchmark(
            n_samples=24, image_size=32, images_per_record=8,
            n_intervals=6, steady_k=2, recovery_intervals=12,
        )
    else:
        results = run_benchmark()
    print_report(results)
    output = Path(args.output)
    merged: dict = {}
    if output.exists():
        try:
            merged = json.loads(output.read_text())
        except (ValueError, OSError):
            merged = {}
    merged["autotune"] = results
    output.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\nwrote autotune section into {output}")
    return 0


def test_autotune_bench_smoke():
    """Tier-2 smoke (CI): the controller must beat the uncontrolled run.

    Under the capped link the controller-on arm must (a) converge to a
    smaller scan group with at most one direction change, (b) hold a
    steady-state stall fraction no worse than controller-off, and
    (c) converge back to full fidelity once the cap lifts.
    """
    results = run_benchmark(
        n_samples=24, image_size=32, images_per_record=8,
        n_intervals=6, steady_k=2, recovery_intervals=12,
        scenarios=("capped_link",),
    )
    capped = results["capped_link"]
    on, off = capped["controller_on"], capped["controller_off"]
    assert off["steady_state"]["scan_group"] == off["n_groups"]
    assert on["steady_state"]["scan_group"] < on["n_groups"]
    assert (
        on["steady_state"]["stall_fraction"] <= off["steady_state"]["stall_fraction"]
    ), capped
    assert on["steady_state"]["bytes_per_sample"] < off["steady_state"]["bytes_per_sample"]
    assert on["direction_changes"] <= 1, on
    assert on["recovery"]["recovered_to_full"], on["recovery"]
    assert on["recovery"]["direction_changes_total"] <= 1, on["recovery"]
    print_report(results)


if __name__ == "__main__":
    sys.exit(main())
