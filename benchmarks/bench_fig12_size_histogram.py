"""Figure 12 — distribution of encoded image sizes (ImageNet).

Encodes the ImageNet-like synthetic dataset and prints the size histogram and
summary statistics; the paper notes most mass concentrates near the mode with
a long tail of large images.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.simulate.throughput import empirical_image_size_distribution


def test_fig12_image_size_distribution(benchmark, imagenet_like):
    dataset, _ = imagenet_like

    def collect():
        dataset.set_scan_group(dataset.n_groups)
        return [len(sample.stream) for sample in dataset]

    sizes = benchmark(collect)
    summary = empirical_image_size_distribution(sizes)

    print_header("Figure 12: encoded image size distribution (ImageNet-like)")
    print(f"{'statistic':<10}{'bytes':>10}")
    for key in ("min", "p05", "median", "mean", "p95", "max"):
        print(f"{key:<10}{summary[key]:>10.0f}")

    counts, edges = np.histogram(sizes, bins=8)
    print("\nhistogram:")
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(1 + 40 * count / max(counts))
        print(f"{low:>7.0f}-{high:<7.0f} {count:>4} {bar}")

    assert summary["min"] > 0
    assert summary["p95"] >= summary["median"] >= summary["p05"]
    # Most images cluster within 2x of the median (paper: mass near the mode).
    near_median = sum(1 for s in sizes if 0.5 * summary["median"] <= s <= 2 * summary["median"])
    assert near_median / len(sizes) > 0.8
