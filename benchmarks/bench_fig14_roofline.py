"""Figure 14 — data-intensity roofline: attainable image rate vs bytes/image."""

from __future__ import annotations

from benchmarks.conftest import mean_bytes_by_group, print_header, rescale_to_paper_sizes
from repro.simulate.roofline import RooflineModel
from repro.simulate.trainer_sim import ClusterSpec

MiB = 1024 * 1024


def test_fig14_roofline(benchmark, imagenet_like):
    dataset, _ = imagenet_like
    cluster = ClusterSpec.paper_shufflenet()

    def run():
        model = RooflineModel(
            compute_images_per_second=cluster.compute_images_per_second,
            storage_bandwidth_bytes_per_second=cluster.storage_bandwidth_bytes_per_second,
        )
        sizes = rescale_to_paper_sizes(mean_bytes_by_group(dataset))
        intensities, rates = model.sweep(1_000, 1_000_000, n_points=12)
        placements = model.annotate_scan_groups(sizes)
        return model, intensities, rates, placements

    model, intensities, rates, placements = benchmark(run)

    print_header("Figure 14: data-intensity roofline (ShuffleNet cluster)")
    print(f"ridge point: {model.ridge_point_bytes():.0f} bytes/image "
          f"(compute roof {model.compute_images_per_second:.0f} img/s, "
          f"bandwidth {model.storage_bandwidth_bytes_per_second / MiB:.0f} MiB/s)")
    print(f"\n{'bytes/image':>12}{'attainable img/s':>18}")
    for intensity, rate in zip(intensities, rates):
        print(f"{intensity:>12.0f}{rate:>18.0f}")
    print(f"\n{'scan group':>11}{'bytes/image':>13}{'img/s':>9}  regime")
    for group in sorted(placements):
        size, rate, regime = placements[group]
        print(f"{group:>11}{size:>13.0f}{rate:>9.0f}  {regime}")

    # Full quality sits on the bandwidth slope; the smallest scan groups reach
    # the compute roof — the knee the paper's figure illustrates.
    assert placements[max(placements)][2] == "io-bound"
    assert placements[1][2] == "compute-bound"
