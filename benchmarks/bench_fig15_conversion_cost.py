"""Figure 15 — dataset conversion cost: static re-encoding vs one PCR conversion.

Two source scenarios are measured:

* **Already-encoded source (the paper's Figure 15 setup).**  The dataset is
  a directory of baseline JPEGs.  The PCR pipeline is a *lossless* transcode
  (the ``jpegtran`` role — entropy decode + entropy re-encode, no DCT or
  quantization) plus one record conversion; the static pipeline must fully
  decode and re-encode every image at every quality.  This is where the
  paper's 1.13–2.05x time advantage lives, and the assertion pins it.
* **Pixel source.**  The dataset is raw pixels, so *both* pipelines pay a
  forward encode and the comparison is 1 progressive encode (+ transcode)
  vs N sequential encodes.  With the batched float32 forward path the
  per-image encode is cheap enough that the N-pass static pipeline is no
  longer reliably slower at these tiny benchmark sizes — the time ratio is
  reported, and only the space amplification (the claim that holds in every
  regime) is asserted.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header
from repro.codecs.baseline import BaselineCodec
from repro.codecs.progressive import ProgressiveCodec
from repro.codecs.transcode import transcode_to_progressive
from repro.core.convert import build_static_copies, convert_to_pcr
from repro.core.writer import PCRWriter
from repro.datasets.registry import IMAGENET_SPEC, generate_dataset
from repro.records.tfrecord import TFRecordWriter

N_SAMPLES = 32
STATIC_QUALITIES = (50, 75, 90, 95)


def _convert_encoded_source(streams, root):
    """The paper's two pipelines over an already-encoded baseline dataset.

    Returns ``(pcr_seconds, pcr_bytes, static_seconds, static_bytes)``.
    """
    start = time.perf_counter()
    writer = PCRWriter(root / "pcr", images_per_record=16, codec=ProgressiveCodec(quality=90))
    for key, payload, label in streams:
        writer.add_sample(key, transcode_to_progressive(payload), label)
    result = writer.finalize()
    pcr_seconds = time.perf_counter() - start

    source_codec = BaselineCodec(quality=90)
    static_seconds = 0.0
    static_bytes = 0
    for quality in STATIC_QUALITIES:
        record_path = root / f"static-q{quality}.tfrecord"
        codec = BaselineCodec(quality=quality)
        start = time.perf_counter()
        with TFRecordWriter(record_path, quality=quality) as record_writer:
            for key, payload, label in streams:
                record_writer.add_sample(key, codec.encode(source_codec.decode(payload)), label)
        static_seconds += time.perf_counter() - start
        static_bytes += record_path.stat().st_size
    return pcr_seconds, result.total_bytes, static_seconds, static_bytes


def test_fig15_conversion_times(benchmark, tmp_path_factory):
    from dataclasses import replace

    spec = replace(IMAGENET_SPEC, n_samples=N_SAMPLES, image_size=48)
    samples = list(generate_dataset(spec, seed=7))
    source_codec = BaselineCodec(quality=90)
    encoded = [(key, source_codec.encode(image), label) for key, image, label in samples]

    def run():
        # Both pixel-source converters stream the samples in bounded chunks
        # through the batched float32 forward path (see repro.core.convert);
        # a chunk smaller than the dataset keeps the streaming loop itself
        # on the measured path.
        root = tmp_path_factory.mktemp("fig15")
        _, pcr_report = convert_to_pcr(
            samples, root / "pcr", images_per_record=16, chunk_size=16
        )
        static_report = build_static_copies(
            samples, root / "static", qualities=STATIC_QUALITIES, chunk_size=16
        )
        encoded_root = tmp_path_factory.mktemp("fig15-encoded")
        encoded_result = _convert_encoded_source(encoded, encoded_root)
        return pcr_report, static_report, encoded_result

    pcr_report, static_report, encoded_result = benchmark.pedantic(run, rounds=1, iterations=1)
    enc_pcr_s, enc_pcr_bytes, enc_static_s, enc_static_bytes = encoded_result

    print_header("Figure 15: conversion cost, static multi-quality copies vs PCR")
    print("pixel source (both pipelines pay a forward encode):")
    print(
        f"{'approach':<10}{'jpeg conv (s)':>15}{'record create (s)':>19}"
        f"{'total (s)':>11}{'images/s':>10}{'bytes':>12}"
    )
    for report in (static_report, pcr_report):
        print(
            f"{report.approach:<10}{report.jpeg_conversion_seconds:>15.2f}"
            f"{report.record_creation_seconds:>19.2f}{report.total_seconds:>11.2f}"
            f"{report.images_per_second:>10.1f}{report.output_bytes:>12}"
        )
    print("\nper-copy sizes (static):")
    for name, size in static_report.per_copy_bytes.items():
        print(f"  {name:<6}{size:>10} bytes")
    ratio = static_report.total_seconds / pcr_report.total_seconds
    print(f"static/PCR total-time ratio: {ratio:.2f}x "
          "(informational: the fused forward path makes both pipelines encode-cheap)")
    print("\nalready-encoded source (the paper's setup — lossless transcode vs re-encode):")
    print(f"{'pcr':<10}{enc_pcr_s:>11.2f} s{enc_pcr_bytes:>12} bytes")
    print(f"{'static':<10}{enc_static_s:>11.2f} s{enc_static_bytes:>12} bytes")
    print(f"static/PCR total-time ratio: {enc_static_s / enc_pcr_s:.2f}x "
          "(paper: PCR is 1.13-2.05x cheaper than the summed static encodings)")

    # The paper's Figure 15 claim: converting an existing JPEG dataset to
    # PCR (lossless transcode) is cheaper than producing all four static
    # copies (decode + re-encode per quality), and takes far fewer bytes.
    assert enc_static_s > enc_pcr_s
    assert enc_static_bytes > 2 * enc_pcr_bytes
    # In every regime the static copies pay the space amplification.
    assert static_report.output_bytes > 2 * pcr_report.output_bytes
