"""Figure 15 — dataset conversion cost: static re-encoding vs one PCR conversion."""

from __future__ import annotations

from benchmarks.conftest import print_header
from repro.core.convert import build_static_copies, convert_to_pcr
from repro.datasets.registry import IMAGENET_SPEC, generate_dataset

N_SAMPLES = 32


def test_fig15_conversion_times(benchmark, tmp_path_factory):
    from dataclasses import replace

    spec = replace(IMAGENET_SPEC, n_samples=N_SAMPLES, image_size=48)
    samples = list(generate_dataset(spec, seed=7))

    def run():
        root = tmp_path_factory.mktemp("fig15")
        _, pcr_report = convert_to_pcr(samples, root / "pcr", images_per_record=16)
        static_report = build_static_copies(samples, root / "static", qualities=(50, 75, 90, 95))
        return pcr_report, static_report

    pcr_report, static_report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 15: conversion cost, static multi-quality copies vs PCR")
    print(f"{'approach':<10}{'jpeg conv (s)':>15}{'record create (s)':>19}{'total (s)':>11}{'bytes':>12}")
    for report in (static_report, pcr_report):
        print(
            f"{report.approach:<10}{report.jpeg_conversion_seconds:>15.2f}"
            f"{report.record_creation_seconds:>19.2f}{report.total_seconds:>11.2f}"
            f"{report.output_bytes:>12}"
        )
    print("\nper-copy sizes (static):")
    for name, size in static_report.per_copy_bytes.items():
        print(f"  {name:<6}{size:>10} bytes")
    ratio = static_report.total_seconds / pcr_report.total_seconds
    print(f"\nstatic/PCR total-time ratio: {ratio:.2f}x "
          "(paper: PCR is 1.13-2.05x cheaper than the summed static encodings)")

    # One PCR conversion is cheaper than producing all four static copies,
    # both in time and in bytes stored.
    assert static_report.total_seconds > pcr_report.total_seconds
    assert static_report.output_bytes > 2 * pcr_report.output_bytes
