"""Codec throughput: vectorized fast paths vs scalar references.

Measures MB/s (of compressed stream bytes) for the entropy-coding layer —
``encode_coefficients`` / ``decode_coefficients`` — per scan group and for
the full 10-scan progressive stream, with the fast path on and off, plus
the full image pipeline (DCT + color + entropy), a per-stage decode
breakdown (entropy / fused dequantize+IDCT / colour+pack), and the
minibatch decode API.  Results are written to ``BENCH_codec.json`` so the
performance trajectory of the codec is recorded PR over PR.

Run as a script (writes the JSON):

    PYTHONPATH=src python benchmarks/bench_codec_throughput.py
    PYTHONPATH=src python benchmarks/bench_codec_throughput.py --quick

or through pytest (smoke assertions only, no JSON):

    PYTHONPATH=src python -m pytest benchmarks/bench_codec_throughput.py -q

Two baselines are reported:

* ``scalar`` — the in-repo scalar reference (``use_fastpath(False)``).
  It shares the word-buffered bit I/O with the fast path, so it is already
  faster than the original implementation.
* ``seed`` — a frozen, seed-faithful reimplementation of the original
  entropy coder (per-bit ``BitReader``/``BitWriter`` of the v0 seed driving
  the same dict-probe Huffman decode), kept here so the recorded speedups
  stay anchored to the codebase this PR started from.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.codecs import config
from repro.codecs.huffman import HuffmanTable
from repro.codecs.markers import EOI, SOI, find_scan_segments, write_scan_segment
from repro.codecs.progressive import (
    ScanScript,
    assemble_partial_stream,
    decode_coefficients,
    empty_coefficients,
    encode_coefficients,
    image_to_coefficients,
    parse_frame_header,
    split_scans,
)
from repro.codecs.rle import (
    ac_band_symbols,
    dc_symbols,
    decode_magnitude,
    read_ac_band,
    read_dc_values,
    write_symbols,
)
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec

DEFAULT_IMAGE_SIZE = 128
DEFAULT_N_IMAGES = 4
DEFAULT_QUALITY = 90
DEFAULT_TRIALS = 5

_MB = 1024.0 * 1024.0


# --------------------------------------------------------------------------
# Frozen seed baseline: the v0 bit-at-a-time bit I/O, verbatim in behaviour.
# The Huffman/RLE layers are shared (they are unchanged algorithms); only the
# bit transport differed in the seed.
# --------------------------------------------------------------------------


class _SeedBitWriter:
    """The seed's per-bit accumulator writer (v0 ``BitWriter``)."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._n_bits = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        for shift in range(n_bits - 1, -1, -1):
            bit = (value >> shift) & 1
            self._current = (self._current << 1) | bit
            self._n_bits += 1
            if self._n_bits == 8:
                self._buffer.append(self._current)
                self._current = 0
                self._n_bits = 0

    def getvalue(self) -> bytes:
        data = bytes(self._buffer)
        if self._n_bits:
            pad = 8 - self._n_bits
            last = (self._current << pad) | ((1 << pad) - 1)
            data += bytes([last])
        return data


class _SeedBitReader:
    """The seed's per-bit reader (v0 ``BitReader``)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    def read_bit(self) -> int:
        if self._byte_pos >= len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, n_bits: int) -> int:
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value


def _seed_encode_scan_body(coefficients, scan) -> bytes:
    """The seed's scan encoder: scalar symbol loops + per-bit writer."""
    all_symbols: list[int] = []
    per_component = []
    for component in scan.component_ids:
        plane = coefficients.planes[component]
        symbols: list[int] = []
        extras: list[tuple[int, int]] = []
        if scan.spectral_start == 0 and scan.spectral_end == 0:
            dc_syms, dc_extras = dc_symbols([int(v) for v in plane[:, 0]])
            symbols.extend(dc_syms)
            extras.extend(dc_extras)
        elif scan.spectral_start == 0:
            previous_dc = 0
            for block in plane:
                dc_value = int(block[0])
                dc_syms, dc_extras = dc_symbols([dc_value - previous_dc])
                previous_dc = dc_value
                symbols.extend(dc_syms)
                extras.extend(dc_extras)
                ac_syms, ac_extras = ac_band_symbols(
                    [int(v) for v in block[1 : scan.spectral_end + 1]]
                )
                symbols.extend(ac_syms)
                extras.extend(ac_extras)
        else:
            for block in plane:
                ac_syms, ac_extras = ac_band_symbols(
                    [int(v) for v in block[scan.spectral_start : scan.spectral_end + 1]]
                )
                symbols.extend(ac_syms)
                extras.extend(ac_extras)
        per_component.append((symbols, extras))
        all_symbols.extend(symbols)
    table = HuffmanTable.from_symbols(all_symbols)
    writer = _SeedBitWriter()
    for symbols, extras in per_component:
        write_symbols(symbols, extras, table, writer)
    return table.to_bytes() + writer.getvalue()


def _seed_encode(coefficients, script) -> bytes:
    parts = [SOI, coefficients.header.to_bytes()]
    for scan in script:
        parts.append(write_scan_segment(scan, _seed_encode_scan_body(coefficients, scan)))
    parts.append(EOI)
    return b"".join(parts)


def _seed_decode(stream: bytes):
    """The seed's decoder: dict-probe Huffman over the per-bit reader."""
    header, _ = parse_frame_header(stream)
    coefficients = empty_coefficients(header)
    for segment in find_scan_segments(stream):
        scan = segment.header
        table, consumed = HuffmanTable.from_bytes(
            stream[segment.payload_start : segment.end]
        )
        reader = _SeedBitReader(stream[segment.payload_start + consumed : segment.end])
        for component in scan.component_ids:
            plane = coefficients.planes[component]
            n_blocks = plane.shape[0]
            if scan.spectral_start == 0 and scan.spectral_end == 0:
                plane[:, 0] = read_dc_values(reader, table, n_blocks)
            elif scan.spectral_start == 0:
                dc_previous = 0
                for block_index in range(n_blocks):
                    category = table.decode_symbol(reader)
                    bits = reader.read_bits(category)
                    dc_previous += decode_magnitude(bits, category)
                    plane[block_index, 0] = dc_previous
                    band = read_ac_band(reader, table, scan.spectral_end)
                    plane[block_index, 1 : scan.spectral_end + 1] = band
            else:
                for block_index in range(n_blocks):
                    band = read_ac_band(reader, table, scan.band_length)
                    plane[block_index, scan.spectral_start : scan.spectral_end + 1] = band
    return coefficients


def _throughput_pair(fn, total_bytes: int, trials: int, seed_fn=None) -> dict:
    """Measure ``fn`` with the fast path on and off; returns MB/s + speedups.

    Fast and scalar trials are interleaved and the best sample of each is
    kept, so background-load drift during the run cannot systematically
    favour one side.  When ``seed_fn`` is given, the frozen seed baseline is
    timed as well.
    """
    with config.use_fastpath(True):
        fn()  # warm LUT/table caches outside the timed region
    fast_seconds = float("inf")
    scalar_seconds = float("inf")
    for _ in range(trials):
        with config.use_fastpath(True):
            start = time.perf_counter()
            fn()
            fast_seconds = min(fast_seconds, time.perf_counter() - start)
        with config.use_fastpath(False):
            start = time.perf_counter()
            fn()
            scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    result = {
        "fast_mb_per_s": round(total_bytes / _MB / fast_seconds, 3),
        "scalar_mb_per_s": round(total_bytes / _MB / scalar_seconds, 3),
        "speedup_vs_scalar": round(scalar_seconds / fast_seconds, 2),
    }
    if seed_fn is not None:
        seed_seconds = float("inf")
        for _ in range(max(3, trials - 2)):
            start = time.perf_counter()
            seed_fn()
            seed_seconds = min(seed_seconds, time.perf_counter() - start)
        result["seed_mb_per_s"] = round(total_bytes / _MB / seed_seconds, 3)
        result["speedup_vs_seed"] = round(seed_seconds / fast_seconds, 2)
    return result


def _stage_pair(fast_fn, scalar_fn, total_bytes: int, trials: int) -> dict:
    """Time path-specific stage callables (no fastpath toggling needed).

    Same interleaved best-of-N discipline as :func:`_throughput_pair`; the
    callables themselves already embody the fast/scalar implementations.
    """
    fast_fn()  # warm caches / scratch outside the timed region
    scalar_fn()
    fast_seconds = float("inf")
    scalar_seconds = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fast_fn()
        fast_seconds = min(fast_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        scalar_fn()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    return {
        "fast_mb_per_s": round(total_bytes / _MB / fast_seconds, 3),
        "scalar_mb_per_s": round(total_bytes / _MB / scalar_seconds, 3),
        "speedup_vs_scalar": round(scalar_seconds / fast_seconds, 2),
    }


def _entropy_tri(fn, total_bytes: int, trials: int) -> dict:
    """Three-tier interleaved best-of-N: superscalar / single-symbol / scalar.

    Same discipline as :func:`_throughput_pair`, with the entropy fast path
    split into its two tiers so the superscalar win is attributable: the
    ``single_symbol`` row is the two-level-LUT loop the superscalar probe
    replaced (``use_superscalar(False)``), the ``scalar`` row the per-symbol
    reference (``use_fastpath(False)``).
    """
    with config.use_fastpath(True), config.use_superscalar(True):
        fn()  # warm pair/walk tables outside the timed region
    best = {"super": float("inf"), "single": float("inf"), "scalar": float("inf")}
    for _ in range(trials):
        with config.use_fastpath(True):
            with config.use_superscalar(True):
                start = time.perf_counter()
                fn()
                best["super"] = min(best["super"], time.perf_counter() - start)
            with config.use_superscalar(False):
                start = time.perf_counter()
                fn()
                best["single"] = min(best["single"], time.perf_counter() - start)
        with config.use_fastpath(False):
            start = time.perf_counter()
            fn()
            best["scalar"] = min(best["scalar"], time.perf_counter() - start)
    return {
        "superscalar_mb_per_s": round(total_bytes / _MB / best["super"], 3),
        "single_symbol_mb_per_s": round(total_bytes / _MB / best["single"], 3),
        "scalar_mb_per_s": round(total_bytes / _MB / best["scalar"], 3),
        "speedup_vs_single_symbol": round(best["single"] / best["super"], 2),
        "speedup_vs_scalar": round(best["scalar"] / best["super"], 2),
    }


def _entropy_superscalar_section(
    streams: list[bytes], split, n_scans: int, n_images: int, trials: int
) -> dict:
    """`entropy_superscalar` rows: the three entropy tiers, full + per group.

    Byte-identity of both fast tiers against the scalar reference is asserted
    on the full streams before anything is timed; the per-scan-group rows
    make the win attributable per scan shape (DC-heavy early groups vs
    AC-band-dominated late ones).
    """
    import numpy as np

    with config.use_fastpath(False):
        reference = [decode_coefficients(s)[0] for s in streams]
    for superscalar in (False, True):
        with config.use_fastpath(True), config.use_superscalar(superscalar):
            for stream, ref in zip(streams, reference):
                decoded, _ = decode_coefficients(stream)
                for plane, ref_plane in zip(decoded.planes, ref.planes):
                    assert np.array_equal(plane, ref_plane), (
                        "fast entropy tier diverged from the scalar reference"
                    )
    stream_bytes = sum(len(s) for s in streams)
    section: dict = {
        "byte_identical": True,
        "full_stream": _entropy_tri(
            lambda: [decode_coefficients(s) for s in streams], stream_bytes, trials
        ),
        "by_scan_group": {},
    }
    for group in range(1, n_scans + 1):
        prefixes = [
            assemble_partial_stream(prefix, scans[:group]) for prefix, scans in split
        ]
        prefix_bytes = sum(len(p) for p in prefixes)
        entry = _entropy_tri(
            lambda prefixes=prefixes: [decode_coefficients(p) for p in prefixes],
            prefix_bytes,
            trials,
        )
        entry["prefix_bytes_mean"] = round(prefix_bytes / n_images, 1)
        section["by_scan_group"][str(group)] = entry
    return section


def run_benchmark(
    image_size: int = DEFAULT_IMAGE_SIZE,
    n_images: int = DEFAULT_N_IMAGES,
    quality: int = DEFAULT_QUALITY,
    trials: int = DEFAULT_TRIALS,
    parallel_workers: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """Run all codec throughput measurements and return the results dict."""
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(n_images)]
    planes = [image_to_coefficients(image, quality) for image in images]
    script = ScanScript.default_for(3)
    streams = [encode_coefficients(p, script) for p in planes]
    stream_bytes = sum(len(s) for s in streams)

    results: dict = {
        "workload": {
            "dataset": "synthetic (frequency-controlled classes)",
            "n_images": n_images,
            "image_size": image_size,
            "quality": quality,
            "n_scans": len(script),
            "mean_stream_bytes": round(stream_bytes / n_images, 1),
            "trials": trials,
            # Parallel-decode scaling is bounded by physical cores: a
            # worker count above cpu_count documents overhead, not speedup.
            "cpu_count": os.cpu_count(),
        }
    }

    # Sanity-check the frozen seed baseline before trusting its timings: it
    # must produce byte-identical streams and identical coefficients.
    assert _seed_encode(planes[0], script) == streams[0]
    seed_coefficients = _seed_decode(streams[0])
    fast_coefficients, _ = decode_coefficients(streams[0])
    for seed_plane, fast_plane in zip(seed_coefficients.planes, fast_coefficients.planes):
        assert (seed_plane == fast_plane).all()

    # Entropy layer: coefficient planes <-> compressed stream.
    results["entropy_encode"] = _throughput_pair(
        lambda: [encode_coefficients(p, script) for p in planes],
        stream_bytes,
        trials,
        seed_fn=lambda: [_seed_encode(p, script) for p in planes],
    )
    results["entropy_decode_full"] = _throughput_pair(
        lambda: [decode_coefficients(s) for s in streams],
        stream_bytes,
        trials,
        seed_fn=lambda: [_seed_decode(s) for s in streams],
    )

    # Per scan group (identity policy: group k == first k scans).
    split = [split_scans(s) for s in streams]
    by_group = {}
    for group in range(1, len(script) + 1):
        prefixes = [
            assemble_partial_stream(prefix, scans[:group]) for prefix, scans in split
        ]
        prefix_bytes = sum(len(p) for p in prefixes)
        entry = _throughput_pair(
            lambda prefixes=prefixes: [decode_coefficients(p) for p in prefixes],
            prefix_bytes,
            trials,
        )
        entry["prefix_bytes_mean"] = round(prefix_bytes / n_images, 1)
        by_group[str(group)] = entry
    results["entropy_decode_by_scan_group"] = by_group

    # Superscalar attribution: the same decodes with the entropy fast path
    # split into its superscalar and single-symbol tiers.
    results["entropy_superscalar"] = _entropy_superscalar_section(
        streams, split, len(script), n_images, trials
    )

    # Full pipeline (image <-> stream).  Decode runs the batched float32
    # pixel path (fused dequantize+IDCT, strided merge, single-matmul
    # colour); the remaining gap to the entropy-only rows is the sequential
    # per-symbol Huffman loop, quantified by the stage breakdown below.
    from repro.codecs.progressive import ProgressiveCodec, decode_progressive_batch

    codec = ProgressiveCodec(quality=quality)
    results["pipeline_encode"] = _throughput_pair(
        lambda: [codec.encode(image) for image in images], stream_bytes, trials
    )
    # Per-image loop and minibatch API are timed inside the *same* trial
    # loop (all four variants interleaved) so slow drift in background load
    # cannot make one row look faster than the other.
    timings = {"fast_loop": float("inf"), "fast_batch": float("inf"),
               "scalar_loop": float("inf"), "scalar_batch": float("inf")}
    with config.use_fastpath(True):
        [codec.decode(s) for s in streams]  # warm caches/scratch
        decode_progressive_batch(streams)
    for _ in range(trials):
        with config.use_fastpath(True):
            start = time.perf_counter()
            [codec.decode(s) for s in streams]
            timings["fast_loop"] = min(timings["fast_loop"], time.perf_counter() - start)
            start = time.perf_counter()
            decode_progressive_batch(streams)
            timings["fast_batch"] = min(timings["fast_batch"], time.perf_counter() - start)
        with config.use_fastpath(False):
            start = time.perf_counter()
            [codec.decode(s) for s in streams]
            timings["scalar_loop"] = min(timings["scalar_loop"], time.perf_counter() - start)
            start = time.perf_counter()
            decode_progressive_batch(streams)
            timings["scalar_batch"] = min(timings["scalar_batch"], time.perf_counter() - start)
    results["pipeline_decode"] = {
        "fast_mb_per_s": round(stream_bytes / _MB / timings["fast_loop"], 3),
        "scalar_mb_per_s": round(stream_bytes / _MB / timings["scalar_loop"], 3),
        "speedup_vs_scalar": round(timings["scalar_loop"] / timings["fast_loop"], 2),
    }
    results["pipeline_decode_batch"] = {
        "fast_mb_per_s": round(stream_bytes / _MB / timings["fast_batch"], 3),
        "scalar_mb_per_s": round(stream_bytes / _MB / timings["scalar_batch"], 3),
        "speedup_vs_scalar": round(timings["scalar_batch"] / timings["fast_batch"], 2),
        "speedup_vs_per_image_loop": round(timings["fast_loop"] / timings["fast_batch"], 2),
    }

    # Per-stage decode breakdown.  Each stage row times one stage in
    # isolation on precomputed inputs (fast = float32 pixelpath kernels,
    # scalar = float64 reference stages); `pct_of_fast_decode` situates the
    # stages inside the fast end-to-end decode so the remaining bottleneck
    # is explicit.
    import numpy as np

    from repro.codecs.blocks import block_grid_shape, merge_blocks
    from repro.codecs.color import upsample_420, ycbcr_to_rgb
    from repro.codecs.dct import inverse_dct_blocks
    from repro.codecs.image import ImageBuffer
    from repro.codecs.markers import SUBSAMPLING_420
    from repro.codecs.pixelpath import (
        PixelScratch,
        channels_to_pixels,
        component_channels,
        decode_to_pixels,
    )
    from repro.codecs.quantization import dequantize
    from repro.codecs.zigzag import N_COEFFICIENTS, zigzag_to_blocks

    with config.use_fastpath(True):
        planes_full = [decode_coefficients(s)[0] for s in streams]
    scratch = PixelScratch()

    def scalar_dequant_idct(coefficients):
        header = coefficients.header
        channels = []
        for index, plane in enumerate(coefficients.planes):
            comp_h, comp_w = header.component_shape(index)
            nv, nh = block_grid_shape(comp_h, comp_w)
            blocks = zigzag_to_blocks(plane.reshape(nv, nh, N_COEFFICIENTS))
            dequantized = dequantize(blocks, header.quant_tables.table_for_component(index))
            channels.append(merge_blocks(inverse_dct_blocks(dequantized), comp_h, comp_w))
        return channels

    def scalar_color_pack(header, channels):
        if header.n_components == 1:
            return ImageBuffer.from_array(channels[0])
        if header.subsampling == SUBSAMPLING_420:
            cb = upsample_420(channels[1], header.height, header.width)
            cr = upsample_420(channels[2], header.height, header.width)
        else:
            cb, cr = channels[1], channels[2]
        ycc = np.stack([channels[0], cb, cr], axis=-1)
        return ImageBuffer.from_array(ycbcr_to_rgb(ycc))

    # The two scalar stage callables are a stage-split copy of the library's
    # scalar reference; assert they still compose to it so a change to the
    # real scalar path cannot silently leave these rows timing a stale copy.
    from repro.codecs.progressive import _coefficients_to_image_scalar

    for c in planes_full:
        staged = scalar_color_pack(c.header, scalar_dequant_idct(c))
        assert np.array_equal(staged.pixels, _coefficients_to_image_scalar(c).pixels), (
            "benchmark scalar stage split has drifted from _coefficients_to_image_scalar"
        )

    fast_channels = [component_channels(c, PixelScratch()) for c in planes_full]
    scalar_channels = [scalar_dequant_idct(c) for c in planes_full]
    stages = {
        "entropy_decode": dict(results["entropy_decode_full"]),
        "dequant_idct_merge": _stage_pair(
            lambda: [component_channels(c, scratch) for c in planes_full],
            lambda: [scalar_dequant_idct(c) for c in planes_full],
            stream_bytes,
            trials,
        ),
        "color_upsample_pack": _stage_pair(
            lambda: [
                channels_to_pixels(c.header, chans, scratch)
                for c, chans in zip(planes_full, fast_channels)
            ],
            lambda: [
                scalar_color_pack(c.header, chans)
                for c, chans in zip(planes_full, scalar_channels)
            ],
            stream_bytes,
            trials,
        ),
        "pixel_decode": _stage_pair(
            lambda: [decode_to_pixels(c, scratch) for c in planes_full],
            lambda: [_coefficients_to_image_scalar(c) for c in planes_full],
            stream_bytes,
            trials,
        ),
    }
    # Situate the stages inside one fast end-to-end decode.
    entropy_seconds = 1.0 / stages["entropy_decode"]["fast_mb_per_s"]
    pixel_seconds = 1.0 / stages["pixel_decode"]["fast_mb_per_s"]
    total_seconds = entropy_seconds + pixel_seconds
    stages["entropy_decode"]["pct_of_fast_decode"] = round(
        100.0 * entropy_seconds / total_seconds, 1
    )
    stages["pixel_decode"]["pct_of_fast_decode"] = round(
        100.0 * pixel_seconds / total_seconds, 1
    )
    results["decode_stages"] = stages

    # Process-parallel decode engine: the same minibatch through a
    # DecodePool at several worker counts, against the in-process batch
    # decoder.  Decode is >90% entropy-bound, so on a multi-core machine
    # MB/s scales with workers until cores (or slab/queue overhead at these
    # small batches) saturate; on a single-core machine the rows document
    # the engine's overhead instead (see `workload.cpu_count`).
    if parallel_workers:
        results["decode_parallel"] = _parallel_section(
            streams, stream_bytes, trials, parallel_workers, timings["fast_batch"]
        )

    # Ingest direction: the batched float32 forward encode path (parity
    # asserted within the documented budget before timing) and the
    # EncodePool, in images/s and uncompressed pixel MB/s.
    results["ingest_throughput"] = _ingest_section(
        images, quality, trials, tuple(w for w in parallel_workers if w > 1) or (2,)
    )

    # Observability overhead: the same minibatch decode with the metrics
    # registry enabled (the default) vs disabled.  The registry is the only
    # obs hook on this path when tracing is off (the tracer's disabled
    # branch is part of both sides), so the delta bounds the cost of
    # always-on metrics.
    results["obs_overhead"] = _obs_overhead_section(streams, stream_bytes, trials)
    return results


def _obs_overhead_section(streams: list[bytes], stream_bytes: int, trials: int) -> dict:
    """`obs_overhead` row: instrumented vs uninstrumented decode throughput."""
    from repro.codecs.progressive import decode_progressive_batch
    from repro.obs import get_registry

    registry = get_registry()
    was_enabled = registry.enabled
    with config.use_fastpath(True):
        decode_progressive_batch(streams)  # warm caches outside the timed region
        enabled_seconds = float("inf")
        disabled_seconds = float("inf")
        try:
            # Interleaved best-of-N, like every other pair in this file, so
            # background-load drift cannot favour one side.
            for _ in range(max(trials, 5)):
                registry.set_enabled(True)
                start = time.perf_counter()
                decode_progressive_batch(streams)
                enabled_seconds = min(enabled_seconds, time.perf_counter() - start)
                registry.set_enabled(False)
                start = time.perf_counter()
                decode_progressive_batch(streams)
                disabled_seconds = min(disabled_seconds, time.perf_counter() - start)
        finally:
            registry.set_enabled(was_enabled)
    return {
        "instrumented_mb_per_s": round(stream_bytes / _MB / enabled_seconds, 3),
        "uninstrumented_mb_per_s": round(stream_bytes / _MB / disabled_seconds, 3),
        "overhead_pct": round(
            100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds, 2
        ),
    }


def _parallel_section(
    streams: list[bytes],
    stream_bytes: int,
    trials: int,
    worker_counts: tuple[int, ...],
    inprocess_seconds: float,
) -> dict:
    """`decode_parallel` rows: DecodePool MB/s and scaling vs in-process."""
    import numpy as np

    from repro.codecs.parallel import DecodePool
    from repro.codecs.progressive import decode_progressive_batch

    section: dict = {
        "inprocess_batch_mb_per_s": round(stream_bytes / _MB / inprocess_seconds, 3),
        "batch_streams": len(streams),
        "workers": {},
    }
    reference = decode_progressive_batch(streams)
    for n_workers in worker_counts:
        with DecodePool(n_workers) as pool:
            decoded = pool.decode_batch(streams)  # warm workers + slab
            for ref, out in zip(reference, decoded):
                assert np.array_equal(ref.pixels, out.pixels), "parallel decode diverged"
            del decoded
            best = float("inf")
            for _ in range(trials):
                start = time.perf_counter()
                out = pool.decode_batch(streams)
                best = min(best, time.perf_counter() - start)
                del out  # let the slab return to the pool between trials
            section["workers"][str(n_workers)] = {
                "mb_per_s": round(stream_bytes / _MB / best, 3),
                "speedup_vs_inprocess_batch": round(inprocess_seconds / best, 2),
                "byte_identical": True,
                "fallback_batches": pool.stats.fallback_batches,
            }
    return section


def _ingest_section(
    images: list, quality: int, trials: int, pool_workers: tuple[int, ...] = (2,)
) -> dict:
    """`ingest_throughput` rows: forward encode, scalar vs fused vs pooled.

    Parity is asserted *before* anything is timed: every fused coefficient
    plane must sit within the documented error budget of the scalar float64
    reference (±1 quant step, mismatch rate <= ``MAX_MISMATCH_RATE`` over
    the workload — see :mod:`repro.codecs.encodepath`), and every
    :class:`EncodePool` row must return streams identical to the in-process
    fused batch.  Throughput is reported in images/s and uncompressed pixel
    MB/s (ingest cost scales with pixels in, not stream bytes out), with the
    interleaved best-of-N discipline of every other section.
    """
    import numpy as np

    from repro.codecs.encodepath import MAX_MISMATCH_RATE
    from repro.codecs.parallel import EncodePool
    from repro.codecs.progressive import ProgressiveCodec, encode_progressive_batch

    n_images = len(images)
    pixel_bytes = sum(image.pixels.nbytes for image in images)

    # -- parity gate (before timing) --------------------------------------
    total = 0
    mismatched = 0
    max_delta = 0
    for image in images:
        with config.use_fastpath(True):
            fast = image_to_coefficients(image, quality)
        with config.use_fastpath(False):
            scalar = image_to_coefficients(image, quality)
        for fast_plane, scalar_plane in zip(fast.planes, scalar.planes):
            delta = np.abs(fast_plane.astype(np.int64) - scalar_plane.astype(np.int64))
            max_delta = max(max_delta, int(delta.max(initial=0)))
            total += delta.size
            mismatched += int(np.count_nonzero(delta))
    mismatch_rate = mismatched / total
    assert max_delta <= 1, "fused forward path exceeded the ±1-quant-step budget"
    assert mismatch_rate <= MAX_MISMATCH_RATE, (
        f"fused forward mismatch rate {mismatch_rate:.2e} exceeds budget "
        f"{MAX_MISMATCH_RATE:.0e}"
    )

    codec = ProgressiveCodec(quality=quality)
    with config.use_fastpath(True):
        fused_streams = encode_progressive_batch(images, quality=quality)  # warm
    timings = {
        "fused_batch": float("inf"),
        "fused_loop": float("inf"),
        "scalar_loop": float("inf"),
    }
    for _ in range(trials):
        with config.use_fastpath(True):
            start = time.perf_counter()
            encode_progressive_batch(images, quality=quality)
            timings["fused_batch"] = min(
                timings["fused_batch"], time.perf_counter() - start
            )
            start = time.perf_counter()
            [codec.encode(image) for image in images]
            timings["fused_loop"] = min(
                timings["fused_loop"], time.perf_counter() - start
            )
        with config.use_fastpath(False):
            start = time.perf_counter()
            [codec.encode(image) for image in images]
            timings["scalar_loop"] = min(
                timings["scalar_loop"], time.perf_counter() - start
            )

    def _rate_row(seconds: float) -> dict:
        return {
            "images_per_s": round(n_images / seconds, 2),
            "pixel_mb_per_s": round(pixel_bytes / _MB / seconds, 3),
        }

    section: dict = {
        "parity": {
            "checked_before_timing": True,
            "max_step_delta": max_delta,
            "mismatch_rate": round(mismatch_rate, 8),
            "budget_rate": MAX_MISMATCH_RATE,
        },
        "scalar": _rate_row(timings["scalar_loop"]),
        "fused": {
            **_rate_row(timings["fused_loop"]),
            "speedup_vs_scalar": round(
                timings["scalar_loop"] / timings["fused_loop"], 2
            ),
        },
        "fused_batch": {
            **_rate_row(timings["fused_batch"]),
            "speedup_vs_scalar": round(
                timings["scalar_loop"] / timings["fused_batch"], 2
            ),
            "speedup_vs_per_image_loop": round(
                timings["fused_loop"] / timings["fused_batch"], 2
            ),
        },
        "workers": {},
    }
    # EncodePool rows: identity-checked against the fused batch, then timed.
    # On a single-core runner these document the engine's slab/queue/fork
    # overhead rather than speedup (see `workload.cpu_count`).
    for n_workers in pool_workers:
        with EncodePool(n_workers, warmup_quality=quality) as pool:
            out = pool.encode_batch(images, quality=quality)  # warm workers + slab
            assert out == fused_streams, "pooled encode diverged from in-process"
            best = float("inf")
            for _ in range(trials):
                start = time.perf_counter()
                pool.encode_batch(images, quality=quality)
                best = min(best, time.perf_counter() - start)
            section["workers"][str(n_workers)] = {
                **_rate_row(best),
                "speedup_vs_inprocess_batch": round(timings["fused_batch"] / best, 2),
                "identical": True,
                "fallback_batches": pool.stats.fallback_batches,
            }
    return section


def run_ingest_benchmark(
    image_size: int = DEFAULT_IMAGE_SIZE,
    n_images: int = DEFAULT_N_IMAGES,
    quality: int = DEFAULT_QUALITY,
    trials: int = DEFAULT_TRIALS,
    pool_workers: tuple[int, ...] = (2,),
) -> dict:
    """Ingest-layer measurements only (the `--ingest-only` mode).

    Same workload construction as :func:`run_benchmark` so the rows are
    directly comparable to the committed ``BENCH_codec.json``; used by the
    CI ingest-throughput regression gate.
    """
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(n_images)]
    return {
        "workload": {
            "dataset": "synthetic (frequency-controlled classes)",
            "n_images": n_images,
            "image_size": image_size,
            "quality": quality,
            "trials": trials,
            "cpu_count": os.cpu_count(),
        },
        "ingest_throughput": _ingest_section(images, quality, trials, pool_workers),
    }


def check_ingest_gate(
    results: dict, baseline_path: str, max_drop_pct: float
) -> tuple[bool, str]:
    """Compare measured ingest images/s against a committed baseline.

    Returns ``(ok, message)``.  The gated statistic is the fused in-process
    batch-encode rate (the pool rows depend on the runner's core count).  A
    baseline without an ``ingest_throughput`` section passes trivially — the
    first run on a new baseline records it.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    if "ingest_throughput" not in baseline:
        return True, "baseline has no ingest_throughput section yet"
    reference = baseline["ingest_throughput"]["fused_batch"]["images_per_s"]
    measured = results["ingest_throughput"]["fused_batch"]["images_per_s"]
    floor = reference * (1.0 - max_drop_pct / 100.0)
    message = (
        f"ingest encode {measured:.2f} images/s vs committed baseline "
        f"{reference:.2f} images/s (floor {floor:.2f} at -{max_drop_pct:.0f}%)"
    )
    return measured >= floor, message


def print_ingest_report(results: dict) -> None:
    workload = results["workload"]
    section = results["ingest_throughput"]
    parity = section["parity"]
    print("-" * 74)
    print(
        f"ingest encode — {workload['n_images']} x {workload['image_size']}px "
        f"synthetic, quality {workload['quality']} "
        f"(parity: max Δ {parity['max_step_delta']} step, "
        f"rate {parity['mismatch_rate']:.1e} <= {parity['budget_rate']:.0e})"
    )
    for key, label in [
        ("scalar", "scalar float64 loop"),
        ("fused", "fused float32 loop"),
        ("fused_batch", "fused batch (scratch reuse)"),
    ]:
        row = section[key]
        speedup = (
            f"   {row['speedup_vs_scalar']:.2f}x vs scalar"
            if "speedup_vs_scalar" in row
            else ""
        )
        print(
            f"  {label:30s} {row['images_per_s']:8.2f} images/s   "
            f"{row['pixel_mb_per_s']:7.2f} pixel MB/s{speedup}"
        )
    for n_workers, row in section["workers"].items():
        print(
            f"  EncodePool, {n_workers} worker(s)        {row['images_per_s']:8.2f} "
            f"images/s   {row['pixel_mb_per_s']:7.2f} pixel MB/s   "
            f"{row['speedup_vs_inprocess_batch']:.2f}x vs in-process "
            f"({workload.get('cpu_count', '?')} cpu(s))"
        )


def run_entropy_benchmark(
    image_size: int = DEFAULT_IMAGE_SIZE,
    n_images: int = DEFAULT_N_IMAGES,
    quality: int = DEFAULT_QUALITY,
    trials: int = DEFAULT_TRIALS,
) -> dict:
    """Entropy-layer measurements only (the `--entropy-only` mode).

    Same workload construction as :func:`run_benchmark` so the rows are
    directly comparable to the committed ``BENCH_codec.json``; used by the
    CI entropy-throughput regression gate, where the pixel/parallel/obs
    sections would only add runtime and noise.
    """
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(n_images)]
    planes = [image_to_coefficients(image, quality) for image in images]
    script = ScanScript.default_for(3)
    streams = [encode_coefficients(p, script) for p in planes]
    stream_bytes = sum(len(s) for s in streams)
    split = [split_scans(s) for s in streams]
    return {
        "workload": {
            "dataset": "synthetic (frequency-controlled classes)",
            "n_images": n_images,
            "image_size": image_size,
            "quality": quality,
            "n_scans": len(script),
            "mean_stream_bytes": round(stream_bytes / n_images, 1),
            "trials": trials,
        },
        "entropy_superscalar": _entropy_superscalar_section(
            streams, split, len(script), n_images, trials
        ),
    }


def check_entropy_gate(
    results: dict, baseline_path: str, max_drop_pct: float
) -> tuple[bool, str]:
    """Compare measured entropy decode MB/s against a committed baseline.

    Returns ``(ok, message)``.  The gated statistic is the superscalar
    full-stream throughput; older baselines without an
    ``entropy_superscalar`` section fall back to ``entropy_decode_full``'s
    fast row (the same decode path at the time that file was written).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    if "entropy_superscalar" in baseline:
        reference = baseline["entropy_superscalar"]["full_stream"][
            "superscalar_mb_per_s"
        ]
    else:
        reference = baseline["entropy_decode_full"]["fast_mb_per_s"]
    measured = results["entropy_superscalar"]["full_stream"]["superscalar_mb_per_s"]
    floor = reference * (1.0 - max_drop_pct / 100.0)
    message = (
        f"entropy decode {measured:.3f} MB/s vs committed baseline "
        f"{reference:.3f} MB/s (floor {floor:.3f} at -{max_drop_pct:.0f}%)"
    )
    return measured >= floor, message


def print_entropy_report(results: dict) -> None:
    workload = results["workload"]
    section = results["entropy_superscalar"]
    print("-" * 74)
    print(
        f"entropy decode tiers — {workload['n_images']} x "
        f"{workload['image_size']}px synthetic, quality {workload['quality']} "
        f"(byte-identical: {section['byte_identical']}):"
    )
    row = section["full_stream"]
    print(
        f"  full stream   super {row['superscalar_mb_per_s']:8.2f} MB/s   "
        f"single {row['single_symbol_mb_per_s']:7.2f} MB/s "
        f"({row['speedup_vs_single_symbol']:.2f}x)   "
        f"scalar {row['scalar_mb_per_s']:6.2f} MB/s ({row['speedup_vs_scalar']:.2f}x)"
    )
    for group, row in section["by_scan_group"].items():
        print(
            f"  group 1..{group:>2s}   super {row['superscalar_mb_per_s']:8.2f} MB/s   "
            f"single {row['single_symbol_mb_per_s']:7.2f} MB/s "
            f"({row['speedup_vs_single_symbol']:.2f}x)   "
            f"scalar {row['scalar_mb_per_s']:6.2f} MB/s ({row['speedup_vs_scalar']:.2f}x)"
        )


def print_report(results: dict) -> None:
    workload = results["workload"]
    print("=" * 74)
    print(
        f"codec throughput — {workload['n_images']} x {workload['image_size']}px "
        f"synthetic, quality {workload['quality']}, {workload['n_scans']} scans"
    )
    print("=" * 74)
    for key, label in [
        ("entropy_encode", "entropy encode (planes -> stream)"),
        ("entropy_decode_full", "entropy decode (stream -> planes)"),
        ("pipeline_encode", "pipeline encode (image -> stream)"),
        ("pipeline_decode", "pipeline decode (stream -> image)"),
        ("pipeline_decode_batch", "pipeline decode (minibatch API)"),
    ]:
        row = results[key]
        seed_part = (
            f"   seed {row['seed_mb_per_s']:6.2f} MB/s ({row['speedup_vs_seed']:.2f}x)"
            if "speedup_vs_seed" in row
            else ""
        )
        print(
            f"{label:36s} fast {row['fast_mb_per_s']:8.2f} MB/s   "
            f"scalar {row['scalar_mb_per_s']:7.2f} MB/s "
            f"({row['speedup_vs_scalar']:.2f}x){seed_part}"
        )
    print("-" * 74)
    print("decode stage breakdown (stage time per compressed MB):")
    for key, label in [
        ("entropy_decode", "entropy (stream -> planes)"),
        ("dequant_idct_merge", "fused dequant+IDCT+merge"),
        ("color_upsample_pack", "upsample+colour+pack"),
        ("pixel_decode", "pixel stage total"),
    ]:
        row = results["decode_stages"][key]
        pct = (
            f"   {row['pct_of_fast_decode']:4.1f}% of fast decode"
            if "pct_of_fast_decode" in row
            else ""
        )
        print(
            f"  {label:34s} fast {row['fast_mb_per_s']:8.2f} MB/s   "
            f"scalar {row['scalar_mb_per_s']:7.2f} MB/s "
            f"({row['speedup_vs_scalar']:.2f}x){pct}"
        )
    print("-" * 74)
    print("entropy decode by scan group (prefix streams):")
    for group, row in results["entropy_decode_by_scan_group"].items():
        print(
            f"  group 1..{group:>2s}  fast {row['fast_mb_per_s']:8.2f} MB/s   "
            f"scalar {row['scalar_mb_per_s']:7.2f} MB/s   {row['speedup_vs_scalar']:5.2f}x"
        )
    if "decode_parallel" in results:
        section = results["decode_parallel"]
        print("-" * 74)
        print(
            f"process-parallel decode ({section['batch_streams']} streams/batch, "
            f"{workload.get('cpu_count', '?')} cpu(s); "
            f"in-process batch {section['inprocess_batch_mb_per_s']:.2f} MB/s):"
        )
        for n_workers, row in section["workers"].items():
            print(
                f"  {n_workers:>2s} worker(s)  {row['mb_per_s']:8.2f} MB/s   "
                f"{row['speedup_vs_inprocess_batch']:5.2f}x vs in-process"
            )
    if "obs_overhead" in results:
        row = results["obs_overhead"]
        print("-" * 74)
        print(
            f"observability overhead (metrics registry on vs off): "
            f"{row['instrumented_mb_per_s']:.2f} vs "
            f"{row['uninstrumented_mb_per_s']:.2f} MB/s "
            f"({row['overhead_pct']:+.2f}%)"
        )
    if "ingest_throughput" in results:
        print_ingest_report(results)
    if "entropy_superscalar" in results:
        print_entropy_report(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload, 1 trial")
    parser.add_argument(
        "--trials",
        type=int,
        default=DEFAULT_TRIALS,
        help="best-of-N trials per measurement (higher = less timer noise)",
    )
    parser.add_argument(
        "--parallel-smoke",
        action="store_true",
        help="only verify + time 2-worker DecodePool parity (fast CI check)",
    )
    parser.add_argument(
        "--entropy-only",
        action="store_true",
        help="only run the entropy-layer tiers (full workload, no JSON)",
    )
    parser.add_argument(
        "--ingest-only",
        action="store_true",
        help="only run the forward-encode / EncodePool rows (no JSON)",
    )
    parser.add_argument(
        "--gate",
        metavar="BASELINE_JSON",
        default=None,
        help="with --entropy-only / --ingest-only: fail if throughput drops "
        "more than --gate-drop-pct below this committed baseline",
    )
    parser.add_argument(
        "--gate-drop-pct",
        type=float,
        default=10.0,
        help="allowed throughput drop vs the --gate baseline (%%)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_codec.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if args.parallel_smoke:
        return parallel_smoke(trials=max(1, args.trials if args.trials != DEFAULT_TRIALS else 2))
    if args.entropy_only:
        results = run_entropy_benchmark(trials=args.trials)
        print_entropy_report(results)
        if args.gate:
            ok, message = check_entropy_gate(results, args.gate, args.gate_drop_pct)
            if not ok:
                # One honest re-measure before failing, like the obs gate: a
                # loaded runner must not fail the gate, a regression will.
                results = run_entropy_benchmark(trials=args.trials + 2)
                print_entropy_report(results)
                ok, message = check_entropy_gate(
                    results, args.gate, args.gate_drop_pct
                )
            print(f"entropy gate {'ok' if ok else 'FAILED'}: {message}")
            return 0 if ok else 1
        return 0
    if args.ingest_only:
        results = run_ingest_benchmark(trials=args.trials)
        print_ingest_report(results)
        if args.gate:
            ok, message = check_ingest_gate(results, args.gate, args.gate_drop_pct)
            if not ok:
                # One honest re-measure before failing, like the other gates.
                results = run_ingest_benchmark(trials=args.trials + 2)
                print_ingest_report(results)
                ok, message = check_ingest_gate(results, args.gate, args.gate_drop_pct)
            print(f"ingest gate {'ok' if ok else 'FAILED'}: {message}")
            return 0 if ok else 1
        return 0
    if args.quick:
        quick_trials = args.trials if args.trials != DEFAULT_TRIALS else 2
        results = run_benchmark(image_size=64, n_images=2, trials=quick_trials)
    else:
        results = run_benchmark(trials=args.trials)
    print_report(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


def parallel_smoke(trials: int = 2) -> int:
    """Quick 2-worker DecodePool check: byte-identical, timed, no JSON.

    This is the CI step guarding the parallel engine: it fails loudly if a
    pool diverges from in-process decode or cannot decode at all, without
    asserting speedups that depend on the runner's core count.  The
    verify+time protocol is `_parallel_section` itself, so the smoke gate
    and the recorded `decode_parallel` rows cannot drift apart.
    """
    from repro.codecs.progressive import decode_progressive_batch

    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=64), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(4)]
    planes = [image_to_coefficients(image, DEFAULT_QUALITY) for image in images]
    script = ScanScript.default_for(3)
    streams = [encode_coefficients(p, script) for p in planes] * 4
    stream_bytes = sum(len(s) for s in streams)
    decode_progressive_batch(streams)  # warm caches outside the timed region
    inprocess_seconds = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        decode_progressive_batch(streams)
        inprocess_seconds = min(inprocess_seconds, time.perf_counter() - start)
    section = _parallel_section(streams, stream_bytes, trials, (2,), inprocess_seconds)
    row = section["workers"]["2"]
    assert row["byte_identical"]
    assert row["fallback_batches"] == 0, "pool fell back in-process"
    print(
        f"parallel-smoke ok: {len(streams)} streams byte-identical at 2 workers, "
        f"{row['mb_per_s']:.2f} MB/s ({os.cpu_count()} cpu(s))"
    )
    return 0


def test_codec_throughput_smoke():
    """Tier-2 smoke: the fast paths must beat the scalar references everywhere."""
    results = run_benchmark(image_size=96, n_images=2, trials=3, parallel_workers=(2,))
    assert results["entropy_decode_full"]["speedup_vs_scalar"] > 1.5
    assert results["entropy_encode"]["speedup_vs_scalar"] > 1.5
    # The superscalar tier must be byte-identical to the scalar reference
    # (asserted inside the section) and clearly beat the single-symbol loop
    # it replaced; 1.2x is far below the recorded margin but above noise.
    assert results["entropy_superscalar"]["byte_identical"]
    assert (
        results["entropy_superscalar"]["full_stream"]["speedup_vs_single_symbol"]
        > 1.2
    )
    assert results["pipeline_decode"]["speedup_vs_scalar"] > 1.2
    # The batched float32 pixel path must clearly beat the float64 stages,
    # and the minibatch API must not be meaningfully slower than per-image
    # decoding (they are measured interleaved; allow timer noise).
    assert results["decode_stages"]["pixel_decode"]["speedup_vs_scalar"] > 2.0
    assert results["pipeline_decode_batch"]["speedup_vs_per_image_loop"] > 0.8
    # Parallel decode is byte-identical (asserted inside the section); its
    # speedup depends on the runner's core count, so only identity is pinned.
    assert results["decode_parallel"]["workers"]["2"]["byte_identical"]
    assert results["obs_overhead"]["overhead_pct"] <= 3.0
    print_report(results)


def test_obs_overhead_smoke():
    """Tier-2 smoke: instrumented decode stays within 3% of uninstrumented."""
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=96), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(4)]
    planes = [image_to_coefficients(image, DEFAULT_QUALITY) for image in images]
    script = ScanScript.default_for(3)
    streams = [encode_coefficients(p, script) for p in planes] * 2
    stream_bytes = sum(len(s) for s in streams)
    row = _obs_overhead_section(streams, stream_bytes, trials=7)
    if row["overhead_pct"] > 3.0:
        # One honest re-measure before failing: a single noisy sample on a
        # loaded CI runner must not fail the gate, a real regression will.
        row = _obs_overhead_section(streams, stream_bytes, trials=9)
    assert row["overhead_pct"] <= 3.0, row


def test_parallel_decode_smoke():
    """Tier-2 smoke: 2-worker DecodePool parity on a small workload."""
    assert parallel_smoke(trials=1) == 0


def test_ingest_throughput_smoke():
    """Tier-2 smoke: the fused forward encode meets its acceptance floor.

    Parity with the scalar reference is asserted inside the section before
    any timing; the recorded requirement is a >=3x single-process images/s
    win for the fused float32 batch encode over the scalar float64 loop.
    """
    results = run_ingest_benchmark(image_size=96, n_images=3, trials=3)
    section = results["ingest_throughput"]
    assert section["parity"]["checked_before_timing"]
    assert section["parity"]["max_step_delta"] <= 1
    speedup = section["fused_batch"]["speedup_vs_scalar"]
    if speedup < 3.0:
        # One honest re-measure before failing, like the other smoke gates.
        results = run_ingest_benchmark(image_size=96, n_images=3, trials=5)
        section = results["ingest_throughput"]
        speedup = section["fused_batch"]["speedup_vs_scalar"]
    assert speedup >= 3.0, section
    assert section["workers"]["2"]["identical"]
    print_ingest_report(results)


if __name__ == "__main__":
    sys.exit(main())
