"""§A.4 — space amplification of multi-quality dataset copies vs one PCR dataset.

The paper's Progressive-GAN example: materializing a dataset at 9 resolutions
amplified storage by up to 40x (uncompressed) or 1.5-4x (JPEG copies), while
the PCR conversion stores a single copy.
"""

from __future__ import annotations

from benchmarks.conftest import print_header
from repro.core.convert import build_static_copies, convert_to_pcr, reference_record_bytes
from repro.datasets.registry import CELEBAHQ_SPEC, generate_dataset

N_SAMPLES = 24
STATIC_QUALITIES = (30, 50, 70, 80, 90, 95)


def test_a4_space_amplification(benchmark, tmp_path_factory):
    from dataclasses import replace

    spec = replace(CELEBAHQ_SPEC, n_samples=N_SAMPLES, image_size=56)
    samples = list(generate_dataset(spec, seed=3))

    def run():
        root = tmp_path_factory.mktemp("a4")
        reference = reference_record_bytes(samples, root / "ref", quality=90)
        _, pcr_report = convert_to_pcr(samples, root / "pcr", images_per_record=12, quality=spec.jpeg_quality)
        static_report = build_static_copies(samples, root / "static", qualities=STATIC_QUALITIES)
        return reference, pcr_report, static_report

    reference, pcr_report, static_report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("§A.4: space amplification of multi-quality copies vs PCR")
    print(f"single-copy reference record: {reference:>10} bytes")
    print(f"PCR dataset (all qualities):  {pcr_report.output_bytes:>10} bytes "
          f"({pcr_report.space_amplification(reference):.2f}x)")
    print(f"{len(STATIC_QUALITIES)} static JPEG copies:         {static_report.output_bytes:>10} bytes "
          f"({static_report.space_amplification(reference):.2f}x)")
    print("\nper-copy sizes:")
    for name, size in static_report.per_copy_bytes.items():
        print(f"  {name:<6}{size:>10} bytes")

    # PCR stores roughly one copy; the static pipeline multiplies storage.
    assert pcr_report.space_amplification(reference) < 1.6
    assert static_report.space_amplification(reference) > 2.5
