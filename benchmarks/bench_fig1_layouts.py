"""Figure 1 — access behaviour of File-per-Image, record, and PCR layouts.

Measures simulated HDD read time and seek counts for one shuffled epoch under
each layout: File-per-Image issues one random read per sample; record layouts
read whole records sequentially; PCRs read record *prefixes* sequentially.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.storage.device import HDD_PROFILE, BlockDevice
from repro.storage.filesystem import SimulatedFilesystem


#: The benchmark datasets are tiny; real records are tens of megabytes.  The
#: sizes are inflated so transfer time (not per-operation seek cost) dominates,
#: which is the regime the paper's storage cluster operates in.
INFLATION = 2048


def _layout_costs(dataset, spec, scan_group: int):
    """Simulated epoch read cost for the three layouts."""
    reader = dataset.reader
    record_sizes = {
        name: reader.record_index(name).total_bytes * INFLATION
        for name in dataset.record_names
    }
    prefix_sizes = {
        name: reader.bytes_for_group(name, scan_group) * INFLATION
        for name in dataset.record_names
    }
    per_image_bytes = max(1, record_sizes[dataset.record_names[0]] // spec.images_per_record)

    rng = np.random.default_rng(0)

    # File-per-Image: one scattered file per sample, shuffled random reads.
    fpi_fs = SimulatedFilesystem(BlockDevice(HDD_PROFILE), scatter_stride_bytes=1 << 18)
    for index in range(len(dataset)):
        fpi_fs.write_file(f"img-{index}", b"x" * per_image_bytes)
    fpi_fs.device.reset_position()
    order = rng.permutation(len(dataset))
    fpi_time = sum(fpi_fs.read_file(f"img-{index}")[1] for index in order)
    fpi_seeks = fpi_fs.device.stats.seeks

    # Record layout: sequential whole-record reads (always full quality).
    rec_fs = SimulatedFilesystem(BlockDevice(HDD_PROFILE))
    for name, size in record_sizes.items():
        rec_fs.write_file(name, b"r" * size)
    rec_fs.device.reset_position()
    rec_time = sum(rec_fs.read_file(name)[1] for name in dataset.record_names)

    # PCR layout: sequential prefix reads up to the requested scan group.
    pcr_fs = SimulatedFilesystem(BlockDevice(HDD_PROFILE))
    for name, size in record_sizes.items():
        pcr_fs.write_file(name, b"p" * size)
    pcr_fs.device.reset_position()
    pcr_time = sum(
        pcr_fs.read_file(name, length=prefix_sizes[name])[1] for name in dataset.record_names
    )
    return {
        "file_per_image": (fpi_time, fpi_seeks),
        "record": (rec_time, len(record_sizes)),
        "pcr": (pcr_time, len(record_sizes)),
    }


def test_fig1_layout_read_behaviour(benchmark, imagenet_like):
    dataset, spec = imagenet_like
    results = benchmark(_layout_costs, dataset, spec, 2)

    print_header("Figure 1: simulated HDD epoch read cost by layout (scan group 2 for PCR)")
    print(f"{'layout':<18}{'read time (ms)':>16}{'seeks':>8}")
    for layout, (seconds, seeks) in results.items():
        print(f"{layout:<18}{seconds * 1e3:>16.2f}{seeks:>8}")

    fpi_time, _ = results["file_per_image"]
    rec_time, _ = results["record"]
    pcr_time, _ = results["pcr"]
    # Record layouts beat file-per-image; PCR prefix reads beat full records.
    assert rec_time < fpi_time
    assert pcr_time < rec_time
