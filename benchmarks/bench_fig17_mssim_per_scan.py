"""Figure 17 — MSSIM of each scan group's reconstruction vs the full image."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.codecs.progressive import ProgressiveCodec
from repro.metrics.msssim import ms_ssim

SAMPLE_LIMIT = 8


def _mssim_by_scan(dataset, quality: int) -> dict[int, float]:
    codec = ProgressiveCodec(quality=quality)
    dataset.set_scan_group(dataset.n_groups)
    streams = [sample.stream for sample in list(dataset)[:SAMPLE_LIMIT]]
    values: dict[int, list[float]] = {group: [] for group in range(1, dataset.n_groups + 1)}
    for stream in streams:
        full = codec.decode(stream)
        for group in values:
            partial = codec.decode(stream, max_scans=group)
            values[group].append(ms_ssim(full, partial))
    return {group: float(np.mean(scores)) for group, scores in values.items()}


def test_fig17_mssim_per_scan(benchmark, bench_datasets):
    def collect():
        return {
            name: _mssim_by_scan(dataset, spec.jpeg_quality)
            for name, (dataset, spec) in bench_datasets.items()
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print_header("Figure 17: MSSIM by scan group (reconstruction vs full quality)")
    groups = sorted(next(iter(results.values())))
    print(f"{'dataset':<12}" + "".join(f"{f'g{group}':>8}" for group in groups))
    for name, by_group in results.items():
        print(f"{name:<12}" + "".join(f"{by_group[group]:>8.3f}" for group in groups))

    for name, by_group in results.items():
        assert by_group[max(by_group)] > 0.999, name
        # Diminishing returns: the first half of the scans recovers most quality.
        assert by_group[5] > by_group[1], name
        assert by_group[max(by_group)] - by_group[5] < by_group[5] - by_group[1] + 0.2, name
