"""Figures 8, 20, 21, 22 — dynamic scan-group autotuning.

Runs the loss-plateau and gradient-cosine controllers (with and without
mixture policies) on the HAM-like dataset and reports the chosen scan groups,
the bytes read per epoch under each strategy, and final accuracy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD
from repro.tuning.dynamic import GradientCosineController, LossPlateauController
from repro.tuning.mixture import MixturePolicy

N_EPOCHS = 8
TUNE_EVERY = 3


def _run_dynamic(dataset, spec, controller_kind: str):
    dataset.set_scan_group(dataset.n_groups)
    loader = DataLoader(dataset, LoaderConfig(batch_size=12, n_workers=1, seed=3))
    trainer = Trainer(
        LinearProbe(n_classes=spec.n_classes, input_size=spec.image_size, seed=2),
        SGD(learning_rate=0.2, momentum=0.9, weight_decay=0.0),
    )
    plateau = LossPlateauController(candidate_groups=[1, 2, 5], probe_batches=1, loss_slack=0.10)
    cosine = GradientCosineController(candidate_groups=[1, 2, 5, 10], similarity_threshold=0.9, max_samples=24)
    bytes_read = []
    chosen = []
    for epoch in range(N_EPOCHS):
        result = trainer.train_epoch(loader, scan_group=dataset.scan_group)
        bytes_read.append(dataset.epoch_bytes())
        chosen.append(dataset.scan_group)
        if epoch > 0 and epoch % TUNE_EVERY == 0:
            if controller_kind == "plateau":
                plateau.tune(trainer, dataset, loader, epoch)
            else:
                cosine.tune(trainer, dataset, epoch)
        del result
    accuracy = trainer.evaluate(loader)
    final_group = dataset.scan_group
    dataset.set_scan_group(dataset.n_groups)
    return {
        "chosen_per_epoch": chosen,
        "bytes_per_epoch": bytes_read,
        "final_accuracy": accuracy,
        "final_group": final_group,
    }


def _run_static_baseline(dataset, spec):
    dataset.set_scan_group(dataset.n_groups)
    loader = DataLoader(dataset, LoaderConfig(batch_size=12, n_workers=1, seed=3))
    trainer = Trainer(
        LinearProbe(n_classes=spec.n_classes, input_size=spec.image_size, seed=2),
        SGD(learning_rate=0.2, momentum=0.9, weight_decay=0.0),
    )
    trainer.fit(loader, n_epochs=N_EPOCHS)
    return {
        "bytes_per_epoch": [dataset.epoch_bytes()] * N_EPOCHS,
        "final_accuracy": trainer.evaluate(loader),
    }


def test_fig8_dynamic_autotuning(benchmark, ham_like):
    dataset, spec = ham_like

    def run():
        return {
            "baseline": _run_static_baseline(dataset, spec),
            "loss-plateau": _run_dynamic(dataset, spec, "plateau"),
            "gradient-cosine": _run_dynamic(dataset, spec, "cosine"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figures 8/20/21/22: dynamic autotuning on HAM10000-like data")
    baseline_bytes = float(np.sum(results["baseline"]["bytes_per_epoch"]))
    print(f"{'strategy':<18}{'final acc':>11}{'bytes/run':>12}{'vs baseline':>13}{'final group':>13}")
    for name, outcome in results.items():
        total_bytes = float(np.sum(outcome["bytes_per_epoch"]))
        group = outcome.get("final_group", dataset.n_groups)
        print(
            f"{name:<18}{outcome['final_accuracy']:>11.3f}{total_bytes:>12.0f}"
            f"{total_bytes / baseline_bytes:>13.2f}{group:>13}"
        )
    for name in ("loss-plateau", "gradient-cosine"):
        print(f"\n{name} scan group per epoch: {results[name]['chosen_per_epoch']}")

    # Dynamic strategies never read more than the static baseline, at least
    # one of them reads strictly less, and accuracy stays in the same range.
    totals = {
        name: float(np.sum(results[name]["bytes_per_epoch"]))
        for name in ("loss-plateau", "gradient-cosine")
    }
    for name, total in totals.items():
        assert total <= baseline_bytes + 1e-6
        assert results[name]["final_accuracy"] >= results["baseline"]["final_accuracy"] - 0.35
    assert min(totals.values()) < baseline_bytes


def test_fig20_mixture_bandwidth_control(benchmark, ham_like):
    dataset, _ = ham_like

    def run():
        sizes = {
            group: total / len(dataset)
            for group, total in dataset.epoch_bytes_by_group().items()
        }
        rows = []
        for label, policy in (
            ("no mix (group 1)", MixturePolicy.point_mass(1, 10)),
            ("mix 50% on 1", MixturePolicy.weighted(1, 10, 10.0)),
            ("mix 85% on 1", MixturePolicy.weighted(1, 10, 100.0)),
            ("uniform", MixturePolicy.uniform(10)),
            ("no mix (baseline)", MixturePolicy.point_mass(10, 10)),
        ):
            rows.append((label, policy.expected_bytes(sizes)))
        return rows, sizes

    rows, sizes = benchmark(run)
    print_header("Figure 20/§A.6.3: expected bytes per image under mixture policies")
    for label, expected in rows:
        print(f"{label:<20}{expected:>12.0f} bytes/image")
    assert rows[0][1] < rows[1][1] < rows[3][1] < rows[4][1]
    assert abs(rows[-1][1] - sizes[10]) < 1e-6
