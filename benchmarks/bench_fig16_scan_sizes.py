"""Figure 16 — bytes read per scan group for every dataset.

Prints the cumulative bytes per image at each scan group (the paper's plot
shows per-scan size; we show both the per-group increment and the cumulative
prefix an epoch would read).
"""

from __future__ import annotations

from benchmarks.conftest import mean_bytes_by_group, print_header


def test_fig16_scan_group_sizes(benchmark, bench_datasets):
    def collect():
        per_dataset = {}
        for name, (dataset, _) in bench_datasets.items():
            per_dataset[name] = mean_bytes_by_group(dataset)
        return per_dataset

    sizes = benchmark(collect)

    print_header("Figure 16: mean bytes per image, cumulative by scan group")
    groups = sorted(next(iter(sizes.values())))
    header = f"{'dataset':<12}" + "".join(f"{f'g{group}':>9}" for group in groups)
    print(header)
    for name, by_group in sizes.items():
        print(f"{name:<12}" + "".join(f"{by_group[group]:>9.0f}" for group in groups))

    print("\nReduction factor (full quality / scan group):")
    for name, by_group in sizes.items():
        full = by_group[max(by_group)]
        print(
            f"{name:<12}"
            + "".join(f"{full / by_group[group]:>9.2f}" for group in groups)
        )

    for name, by_group in sizes.items():
        ordered = [by_group[group] for group in groups]
        assert ordered == sorted(ordered), f"{name}: cumulative sizes must be monotone"
        # The paper reports that using all scans needs ~2-10x more bandwidth
        # than the first couple of scans.
        assert ordered[-1] / ordered[0] > 2.0
