"""Figures 4, 23, 24 — time-to-accuracy on ImageNet and CelebA-HQ (ResNet & ShuffleNet).

Wall-clock per epoch comes from the calibrated cluster simulator (published
compute/storage rates, measured per-scan-group byte sizes); the accuracy
ceiling of each scan group comes from its measured MSSIM via the Figure 7
relationship, with the CelebA binary task given a lower sensitivity than the
1000-way ImageNet task (Section 4.2's observation that CelebA tolerates the
quality loss).
"""

from __future__ import annotations

from benchmarks.conftest import mean_bytes_by_group, print_header, rescale_to_paper_sizes
from repro.codecs.progressive import ProgressiveCodec
from repro.metrics.msssim import ms_ssim
from repro.simulate.trainer_sim import ClusterSpec, TrainingSimulator, mssim_degraded_accuracy

SCAN_GROUPS = (1, 2, 5, 10)
PAPER_BASELINE_ACCURACY = {"imagenet": 0.70, "celebahq": 0.92}
#: How strongly each task's accuracy ceiling degrades with MSSIM loss: the
#: 1000-way ImageNet task is sensitive to missing high frequencies, the binary
#: CelebA smile task barely notices them (Section 4.2/4.3).
TASK_SENSITIVITY = {"imagenet": 0.6, "celebahq": 0.12}
N_TRAIN_IMAGES = {"imagenet": 1_281_167, "celebahq": 24_000}
N_EPOCHS = {"imagenet": 90, "celebahq": 90}


def _group_mssim(dataset, quality, groups, sample_limit=6):
    codec = ProgressiveCodec(quality=quality)
    dataset.set_scan_group(dataset.n_groups)
    streams = [sample.stream for sample in list(dataset)[:sample_limit]]
    out = {}
    for group in groups:
        values = []
        for stream in streams:
            values.append(ms_ssim(codec.decode(stream), codec.decode(stream, max_scans=group)))
        out[group] = sum(values) / len(values)
    return out


def _simulate(dataset, spec, dataset_name, cluster, n_epochs):
    sizes = rescale_to_paper_sizes(
        {g: mean_bytes_by_group(dataset)[g] for g in SCAN_GROUPS}
    )
    mssim = _group_mssim(dataset, spec.jpeg_quality, SCAN_GROUPS)
    finals = {
        group: mssim_degraded_accuracy(
            PAPER_BASELINE_ACCURACY[dataset_name], mssim[group], TASK_SENSITIVITY[dataset_name]
        )
        for group in SCAN_GROUPS
    }
    simulator = TrainingSimulator(cluster, n_train_images=N_TRAIN_IMAGES[dataset_name], eval_every_epochs=5)
    runs = simulator.compare_scan_groups(sizes, finals, n_epochs=n_epochs)
    return runs, simulator


def _report(title, runs, target_accuracy):
    print_header(title)
    print(f"{'group':>6}{'img/s':>10}{'epoch (s)':>12}{'final acc':>11}{'t@target (s)':>14}")
    baseline_time = runs[10].time_to_accuracy(target_accuracy)
    for group in sorted(runs):
        run = runs[group]
        reach = run.time_to_accuracy(target_accuracy)
        print(
            f"{group:>6}{run.images_per_second:>10.0f}{run.epoch_seconds:>12.1f}"
            f"{run.final_accuracy:>11.3f}{(reach if reach else float('nan')):>14.1f}"
        )
    reach_5 = runs[5].time_to_accuracy(target_accuracy)
    if baseline_time and reach_5:
        print(f"\nspeedup of scan group 5 over baseline at {target_accuracy:.0%} target: "
              f"{baseline_time / reach_5:.2f}x")
    return baseline_time


def test_fig4_imagenet_and_celeba_time_to_accuracy(benchmark, imagenet_like, celeba_like):
    def run_all():
        results = {}
        for model_name, cluster in (
            ("resnet18", ClusterSpec.paper_resnet()),
            ("shufflenetv2", ClusterSpec.paper_shufflenet()),
        ):
            for dataset_name, (dataset, spec) in (
                ("imagenet", imagenet_like),
                ("celebahq", celeba_like),
            ):
                runs, _ = _simulate(dataset, spec, dataset_name, cluster, N_EPOCHS[dataset_name])
                results[(dataset_name, model_name)] = runs
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for (dataset_name, model_name), runs in results.items():
        target = PAPER_BASELINE_ACCURACY[dataset_name] * 0.85
        _report(
            f"Figure 4/23/24: {dataset_name} + {model_name} time-to-accuracy", runs, target
        )

    # Shape checks mirroring the paper's observations.  ShuffleNet (faster,
    # more I/O bound) must show a clear speedup; ResNet's speedup is smaller
    # because it saturates compute sooner.
    # ResNet saturates compute early, so its gains can be cancelled by the
    # statistical-efficiency cost of lower scans (the paper's Observation 1:
    # smaller models see the larger speedups); we only require it not to slow
    # down materially.
    minimum_speedup = {"resnet18": 0.9, "shufflenetv2": 1.3}
    for (dataset_name, model_name), runs in results.items():
        target = PAPER_BASELINE_ACCURACY[dataset_name] * 0.85
        baseline_reach = runs[10].time_to_accuracy(target)
        group5_reach = runs[5].time_to_accuracy(target)
        assert group5_reach is not None and baseline_reach is not None
        speedup = baseline_reach / group5_reach
        assert speedup > minimum_speedup[model_name], (dataset_name, model_name, speedup)
        if model_name == "shufflenetv2":
            resnet_runs = results[(dataset_name, "resnet18")]
            resnet_speedup = resnet_runs[10].time_to_accuracy(target) / resnet_runs[5].time_to_accuracy(target)
            assert speedup >= resnet_speedup - 0.05
    # ImageNet scan 1 loses noticeable accuracy; CelebA largely tolerates it.
    imagenet_runs = results[("imagenet", "shufflenetv2")]
    celeba_runs = results[("celebahq", "shufflenetv2")]
    assert imagenet_runs[1].final_accuracy < 0.95 * imagenet_runs[10].final_accuracy
    assert celeba_runs[1].final_accuracy > 0.8 * celeba_runs[10].final_accuracy
