"""Figure 19 — cosine similarity between scan-group gradients and true gradients.

Also covers the mixture variant: drawing half the records from other scan
groups pulls the gradient back toward the full-quality gradient.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.training.gradients import cosine_similarity, dataset_gradient
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.tuning.mixture import MixturePolicy

SCAN_GROUPS = (1, 2, 5, 10)
MAX_SAMPLES = 32


def _mixture_gradient(trainer, dataset, policy, rng, max_samples):
    """Gradient where each record's scan group is drawn from the mixture."""
    gradients = []
    weights = []
    for group in range(1, dataset.n_groups + 1):
        probability = policy.selection_probability(group)
        if probability < 1e-9:
            continue
        gradients.append(dataset_gradient(trainer, dataset, group, max_samples=max_samples))
        weights.append(probability)
    del rng
    stacked = np.stack(gradients, axis=0)
    return np.average(stacked, axis=0, weights=weights)


def test_fig19_gradient_cosine_similarity(benchmark, ham_like):
    dataset, spec = ham_like

    def run():
        trainer = Trainer(LinearProbe(n_classes=spec.n_classes, input_size=spec.image_size, seed=3))
        reference = dataset_gradient(trainer, dataset, dataset.n_groups, max_samples=MAX_SAMPLES)
        pure = {
            group: cosine_similarity(
                dataset_gradient(trainer, dataset, group, max_samples=MAX_SAMPLES), reference
            )
            for group in SCAN_GROUPS
        }
        rng = np.random.default_rng(0)
        mixed_50 = {
            group: cosine_similarity(
                _mixture_gradient(trainer, dataset, MixturePolicy.weighted(group, 10, 10.0), rng, MAX_SAMPLES),
                reference,
            )
            for group in (1, 2)
        }
        return pure, mixed_50

    pure, mixed_50 = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 19: gradient cosine similarity to the full-quality gradient")
    print(f"{'group':>6}{'no mix':>9}{'mix ~50%':>10}")
    for group in SCAN_GROUPS:
        mixed = mixed_50.get(group)
        print(f"{group:>6}{pure[group]:>9.3f}{(f'{mixed:.3f}' if mixed is not None else '-'):>10}")

    assert pure[10] > 0.999
    assert pure[1] <= pure[2] + 0.05 and pure[2] <= pure[5] + 0.05
    # Mixing in other scan groups increases tolerance to low-quality data.
    assert mixed_50[1] >= pure[1] - 1e-6
