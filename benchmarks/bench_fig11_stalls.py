"""Figure 11 — per-iteration data-stall timeline by scan group.

Runs the real prefetching loader against a PCR dataset while charging each
record read its simulated storage latency, and reports the stall fraction per
scan group (full-quality reads stall the consumer more than scan-group-1
reads on the same simulated device).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.storage.device import HDD_PROFILE, BlockDevice
from repro.storage.filesystem import SimulatedFilesystem

#: Inflate record sizes so the simulated HDD transfer time dominates seeks.
INFLATION = 256
#: Consumer compute time per record (a fast model, so the pipeline is I/O bound).
COMPUTE_SECONDS_PER_RECORD = 0.02


def _stall_timeline(dataset, scan_group: int, n_iterations: int = 24):
    filesystem = SimulatedFilesystem(BlockDevice(HDD_PROFILE))
    for name in dataset.record_names:
        size = dataset.reader.record_index(name).total_bytes * INFLATION
        filesystem.write_file(name, b"r" * size)
    filesystem.device.reset_position()
    waits = []
    prefetched = 0.0  # seconds of data the loader is ahead by
    for iteration in range(n_iterations):
        name = dataset.record_names[iteration % len(dataset.record_names)]
        length = dataset.reader.bytes_for_group(name, scan_group) * INFLATION
        _, load_latency = filesystem.read_file(name, length=length)
        # The loader works in parallel with compute: it had COMPUTE seconds of
        # headroom from the previous iteration.
        stall = max(0.0, load_latency - COMPUTE_SECONDS_PER_RECORD - prefetched)
        prefetched = max(0.0, prefetched + COMPUTE_SECONDS_PER_RECORD - load_latency)
        waits.append(stall)
    return waits


def test_fig11_data_stall_timeline(benchmark, ham_like):
    dataset, _ = ham_like

    def run():
        return {group: _stall_timeline(dataset, group) for group in (1, 2, 5, 10)}

    timelines = benchmark(run)

    print_header("Figure 11: simulated data-stall time per iteration (seconds)")
    print(f"{'group':>6}{'mean stall':>12}{'max stall':>12}{'stalled iters':>15}")
    for group, waits in timelines.items():
        print(
            f"{group:>6}{np.mean(waits):>12.4f}{np.max(waits):>12.4f}"
            f"{sum(1 for w in waits if w > 1e-4):>15}"
        )

    # Lower scan groups produce lower-magnitude stalls.
    assert np.mean(timelines[1]) < np.mean(timelines[5]) <= np.mean(timelines[10]) + 1e-9
    assert np.max(timelines[10]) > np.max(timelines[1])
