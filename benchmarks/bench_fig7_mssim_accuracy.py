"""Figure 7 — MSSIM vs final accuracy regression (Cars, ShuffleNet role).

Trains a small model per scan group on the Cars-like dataset, measures each
group's MSSIM, and fits the linear MSSIM-to-accuracy relationship the paper
uses as a static tuning diagnostic.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.codecs.progressive import ProgressiveCodec
from repro.metrics.msssim import ms_ssim
from repro.metrics.regression import fit_mssim_accuracy
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.training.loop import Trainer
from repro.training.models import LinearProbe
from repro.training.optim import SGD

SCAN_GROUPS = (1, 2, 5, 10)
N_EPOCHS = 8


def test_fig7_mssim_accuracy_regression(benchmark, cars_like):
    dataset, spec = cars_like

    def run():
        codec = ProgressiveCodec(quality=spec.jpeg_quality)
        dataset.set_scan_group(dataset.n_groups)
        streams = [sample.stream for sample in list(dataset)[:6]]
        mssim = {}
        for group in SCAN_GROUPS:
            mssim[group] = float(
                np.mean(
                    [
                        ms_ssim(codec.decode(s), codec.decode(s, max_scans=group))
                        for s in streams
                    ]
                )
            )
        accuracy = {}
        for group in SCAN_GROUPS:
            dataset.set_scan_group(group)
            loader = DataLoader(dataset, LoaderConfig(batch_size=12, n_workers=1, seed=group))
            trainer = Trainer(
                LinearProbe(n_classes=spec.n_classes, input_size=spec.image_size, seed=1),
                SGD(learning_rate=0.2, momentum=0.9, weight_decay=0.0),
            )
            trainer.fit(loader, n_epochs=N_EPOCHS)
            accuracy[group] = trainer.evaluate(loader)
        dataset.set_scan_group(dataset.n_groups)
        fit = fit_mssim_accuracy([mssim[g] for g in SCAN_GROUPS], [accuracy[g] for g in SCAN_GROUPS])
        return mssim, accuracy, fit

    mssim, accuracy, fit = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 7: MSSIM vs final accuracy (linear regression)")
    print(f"{'group':>6}{'MSSIM':>9}{'accuracy':>10}{'predicted':>11}")
    for group in SCAN_GROUPS:
        print(
            f"{group:>6}{mssim[group]:>9.3f}{accuracy[group]:>10.3f}"
            f"{float(fit.predict(mssim[group])):>11.3f}"
        )
    print(f"\nfit: accuracy = {fit.slope:.2f} * MSSIM + {fit.intercept:.2f}"
          f"  (R^2 = {fit.r_squared:.3f}, p = {fit.p_value:.3g})")
    print("paper (Cars, crop): accuracy = 405.0 * MSSIM - 331.0, p = 6.9e-09")

    # Shape: accuracy correlates positively with MSSIM.
    assert fit.slope > 0
    assert accuracy[10] >= accuracy[1] - 0.05
    assert mssim[10] > mssim[1]
