"""Serving throughput and cache behaviour of the PCR record server.

Builds a synthetic PCR dataset, starts a :class:`PCRRecordServer` on
localhost, and measures:

* ``single_client_by_group`` — cold (cache-miss) and warm (cache-hit)
  fetch throughput of one client at several scan groups;
* ``prefix_containment`` — per-group hit rates once the cache holds full
  prefixes: every lower-group request must be a prefix-containment hit;
* ``pipelined_batch`` — one pipelined ``BATCH`` round trip vs sequential
  single-record requests;
* ``multi_client`` — aggregate throughput of several concurrent clients at
  mixed scan groups against one shared server cache;
* ``remote_loader`` — samples/s of a ``DataLoader`` driven through
  :class:`RemoteRecordSource` at a low and a high scan group.

Results go to ``BENCH_serving.json``:

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick

or through pytest (smoke assertions only, no JSON):

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.dataset import PCRDataset
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.serving.client import PCRClient
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer

_MB = 1024.0 * 1024.0


def _build_dataset(workdir: str, n_samples: int, image_size: int, per_record: int) -> PCRDataset:
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=11
    )
    samples = generator.generate_batch(n_samples, seed=11)
    return PCRDataset.build(samples, workdir, images_per_record=per_record, quality=90)


def _probe_groups(n_groups: int) -> list[int]:
    groups = sorted({1, max(1, n_groups // 2), n_groups})
    return groups


def _fetch_epoch(client: PCRClient, names: list[str], group: int) -> int:
    total = 0
    for name in names:
        total += len(client.get_record_bytes(name, group))
    return total


def _bench_single_client(directory: Path, names: list[str], n_groups: int, trials: int) -> dict:
    out: dict[str, dict] = {}
    for group in _probe_groups(n_groups):
        with PCRRecordServer(directory, port=0) as server:
            with PCRClient(port=server.port) as client:
                start = time.perf_counter()
                cold_bytes = _fetch_epoch(client, names, group)
                cold_seconds = time.perf_counter() - start

                warm_seconds = []
                for _ in range(trials):
                    start = time.perf_counter()
                    _fetch_epoch(client, names, group)
                    warm_seconds.append(time.perf_counter() - start)
                warm_best = min(warm_seconds)
                stats = server.stats()
        out[str(group)] = {
            "epoch_bytes": cold_bytes,
            "cold_mb_per_s": cold_bytes / _MB / cold_seconds,
            "warm_mb_per_s": cold_bytes / _MB / warm_best,
            "warm_records_per_s": len(names) / warm_best,
            "cache_hit_rate": stats["cache"]["hit_rate"],
        }
    return out


def _bench_prefix_containment(directory: Path, names: list[str], n_groups: int) -> dict:
    """Populate the cache at the top group, then request every lower group."""
    with PCRRecordServer(directory, port=0) as server:
        with PCRClient(port=server.port) as client:
            for name in names:
                client.get_record_bytes(name, n_groups)
            for group in range(1, n_groups):
                for name in names:
                    client.get_record_bytes(name, group)
            stats = client.stat()
    cache = stats["cache"]
    lower_requests = len(names) * (n_groups - 1)
    return {
        "populate_group": n_groups,
        "lower_group_requests": lower_requests,
        "prefix_hits": cache["prefix_hits"],
        "prefix_hit_rate": cache["prefix_hit_rate"],
        "hit_rate": cache["hit_rate"],
        "misses": cache["misses"],
        "hits_by_group": cache["hits_by_group"],
        "bytes_served_by_group": cache["bytes_served_by_group"],
    }


def _bench_pipelined_batch(directory: Path, names: list[str], n_groups: int, trials: int) -> dict:
    with PCRRecordServer(directory, port=0) as server:
        with PCRClient(port=server.port) as client:
            requests = [(name, n_groups) for name in names]
            client.get_record_batch(requests)  # warm the cache
            batch_seconds = []
            for _ in range(trials):
                start = time.perf_counter()
                blobs = client.get_record_batch(requests)
                batch_seconds.append(time.perf_counter() - start)
            total_bytes = sum(len(blob) for blob in blobs)
            single_seconds = []
            for _ in range(trials):
                start = time.perf_counter()
                _fetch_epoch(client, names, n_groups)
                single_seconds.append(time.perf_counter() - start)
    batch_best, single_best = min(batch_seconds), min(single_seconds)
    return {
        "n_records": len(names),
        "batch_mb_per_s": total_bytes / _MB / batch_best,
        "sequential_mb_per_s": total_bytes / _MB / single_best,
        "speedup_vs_sequential": single_best / batch_best,
    }


def _bench_multi_client(
    directory: Path, names: list[str], n_groups: int, n_clients: int, epochs: int
) -> dict:
    groups = _probe_groups(n_groups)
    with PCRRecordServer(directory, port=0) as server:
        fetched_bytes = [0] * n_clients
        errors: list[BaseException] = []

        def run_client(slot: int) -> None:
            try:
                with PCRClient(port=server.port, pool_size=2) as client:
                    group = groups[slot % len(groups)]
                    for _ in range(epochs):
                        fetched_bytes[slot] += _fetch_epoch(client, names, group)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(i,)) for i in range(n_clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        stats = server.stats()
    total = sum(fetched_bytes)
    return {
        "n_clients": n_clients,
        "epochs_per_client": epochs,
        "aggregate_mb_per_s": total / _MB / elapsed,
        "aggregate_records_per_s": n_clients * epochs * len(names) / elapsed,
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "cache_prefix_hit_rate": stats["cache"]["prefix_hit_rate"],
        "server_errors": stats["errors"],
    }


def _bench_remote_loader(directory: Path, n_groups: int, batch_size: int) -> dict:
    out: dict[str, dict] = {}
    with PCRRecordServer(directory, port=0) as server:
        with RemoteRecordSource(port=server.port) as source:
            config = LoaderConfig(batch_size=batch_size, n_workers=2, shuffle=False, seed=0)
            for group in (1, n_groups):
                source.set_scan_group(group)
                loader = DataLoader(source, config)
                start = time.perf_counter()
                n_samples = sum(len(batch) for batch in loader.epoch())
                elapsed = time.perf_counter() - start
                out[str(group)] = {
                    "samples_per_s": n_samples / elapsed,
                    "epoch_seconds": elapsed,
                    "epoch_bytes": source.epoch_bytes(),
                }
    return out


def run_benchmark(
    n_samples: int = 96,
    image_size: int = 64,
    images_per_record: int = 16,
    trials: int = 3,
    n_clients: int = 4,
    multi_client_epochs: int = 3,
) -> dict:
    with tempfile.TemporaryDirectory(prefix="pcr-serving-bench-") as workdir:
        dataset = _build_dataset(workdir, n_samples, image_size, images_per_record)
        directory = dataset.reader.directory
        names = dataset.record_names
        n_groups = dataset.n_groups
        results = {
            "params": {
                "n_samples": n_samples,
                "image_size": image_size,
                "images_per_record": images_per_record,
                "n_records": len(names),
                "n_groups": n_groups,
                "trials": trials,
            },
            "single_client_by_group": _bench_single_client(directory, names, n_groups, trials),
            "prefix_containment": _bench_prefix_containment(directory, names, n_groups),
            "pipelined_batch": _bench_pipelined_batch(directory, names, n_groups, trials),
            "multi_client": _bench_multi_client(
                directory, names, n_groups, n_clients, multi_client_epochs
            ),
            "remote_loader_by_group": _bench_remote_loader(
                directory, n_groups, batch_size=16
            ),
        }
        dataset.close()
    return results


def print_report(results: dict) -> None:
    print("=" * 74)
    print("PCR record serving benchmark")
    print("=" * 74)
    params = results["params"]
    print(
        f"{params['n_records']} records, {params['n_samples']} samples, "
        f"{params['n_groups']} scan groups"
    )
    print("-" * 74)
    print("single client, per scan group (cold = cache miss, warm = cache hit):")
    for group, row in results["single_client_by_group"].items():
        print(
            f"  group {group:>2s}  cold {row['cold_mb_per_s']:8.2f} MB/s   "
            f"warm {row['warm_mb_per_s']:8.2f} MB/s   "
            f"{row['warm_records_per_s']:8.1f} rec/s"
        )
    containment = results["prefix_containment"]
    print(
        f"prefix containment: {containment['prefix_hits']}/"
        f"{containment['lower_group_requests']} lower-group requests served by "
        f"slicing cached prefixes (prefix hit rate {containment['prefix_hit_rate']:.2f})"
    )
    batch = results["pipelined_batch"]
    print(
        f"pipelined batch:    {batch['batch_mb_per_s']:8.2f} MB/s vs "
        f"{batch['sequential_mb_per_s']:8.2f} MB/s sequential "
        f"({batch['speedup_vs_sequential']:.2f}x)"
    )
    multi = results["multi_client"]
    print(
        f"multi-client:       {multi['n_clients']} clients  "
        f"{multi['aggregate_mb_per_s']:8.2f} MB/s aggregate   "
        f"hit rate {multi['cache_hit_rate']:.2f}"
    )
    print("remote DataLoader epoch:")
    for group, row in results["remote_loader_by_group"].items():
        print(
            f"  group {group:>2s}  {row['samples_per_s']:8.1f} samples/s   "
            f"epoch {row['epoch_seconds']:.2f}s   {row['epoch_bytes']} bytes"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload, fewer trials")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        results = run_benchmark(
            n_samples=24, image_size=32, images_per_record=8, trials=2,
            n_clients=2, multi_client_epochs=2,
        )
    else:
        results = run_benchmark()
    print_report(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


def test_serving_bench_smoke():
    """Tier-2 smoke: the scan-prefix cache must produce containment hits."""
    results = run_benchmark(
        n_samples=16, image_size=32, images_per_record=8, trials=1,
        n_clients=2, multi_client_epochs=1,
    )
    containment = results["prefix_containment"]
    assert containment["prefix_hit_rate"] > 0
    assert containment["prefix_hits"] == containment["lower_group_requests"]
    for row in results["single_client_by_group"].values():
        assert row["warm_mb_per_s"] >= row["cold_mb_per_s"] * 0.2
    print_report(results)


if __name__ == "__main__":
    sys.exit(main())
