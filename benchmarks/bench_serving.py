"""Serving throughput and cache behaviour of the PCR record server.

Builds a synthetic PCR dataset, starts a :class:`PCRRecordServer` on
localhost, and measures:

* ``single_client_by_group`` — cold (cache-miss) and warm (cache-hit)
  fetch throughput of one client at several scan groups;
* ``prefix_containment`` — per-group hit rates once the cache holds full
  prefixes: every lower-group request must be a prefix-containment hit;
* ``pipelined_batch`` — one pipelined ``BATCH`` round trip vs sequential
  single-record requests, at several batch sizes (4/16/64) so a
  regression cannot hide in a single operating point;
* ``multi_client`` — aggregate throughput of several concurrent clients at
  mixed scan groups against one shared server cache;
* ``high_connection_count`` — a selector-driven load generator sweeping
  64/256/1024 concurrent sockets against one event-loop replica;
* ``remote_loader`` — samples/s of a ``DataLoader`` driven through
  :class:`RemoteRecordSource` at a low and a high scan group.

Results go to ``BENCH_serving.json``:

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick

or through pytest (smoke assertions only, no JSON):

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import json
import selectors
import socket
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.dataset import PCRDataset
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec
from repro.pipeline.loader import DataLoader, LoaderConfig
from repro.serving import protocol
from repro.serving.client import PCRClient
from repro.serving.remote_source import RemoteRecordSource
from repro.serving.server import PCRRecordServer

_MB = 1024.0 * 1024.0


def _build_dataset(workdir: str, n_samples: int, image_size: int, per_record: int) -> PCRDataset:
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=image_size), seed=11
    )
    samples = generator.generate_batch(n_samples, seed=11)
    return PCRDataset.build(samples, workdir, images_per_record=per_record, quality=90)


def _probe_groups(n_groups: int) -> list[int]:
    groups = sorted({1, max(1, n_groups // 2), n_groups})
    return groups


def _fetch_epoch(client: PCRClient, names: list[str], group: int) -> int:
    total = 0
    for name in names:
        total += len(client.get_record_bytes(name, group))
    return total


def _bench_single_client(directory: Path, names: list[str], n_groups: int, trials: int) -> dict:
    out: dict[str, dict] = {}
    for group in _probe_groups(n_groups):
        with PCRRecordServer(directory, port=0) as server:
            with PCRClient(port=server.port) as client:
                start = time.perf_counter()
                cold_bytes = _fetch_epoch(client, names, group)
                cold_seconds = time.perf_counter() - start

                warm_seconds = []
                for _ in range(trials):
                    start = time.perf_counter()
                    _fetch_epoch(client, names, group)
                    warm_seconds.append(time.perf_counter() - start)
                warm_best = min(warm_seconds)
                stats = server.stats()
        out[str(group)] = {
            "epoch_bytes": cold_bytes,
            "cold_mb_per_s": cold_bytes / _MB / cold_seconds,
            "warm_mb_per_s": cold_bytes / _MB / warm_best,
            "warm_records_per_s": len(names) / warm_best,
            "cache_hit_rate": stats["cache"]["hit_rate"],
        }
    return out


def _bench_prefix_containment(directory: Path, names: list[str], n_groups: int) -> dict:
    """Populate the cache at the top group, then request every lower group."""
    with PCRRecordServer(directory, port=0) as server:
        with PCRClient(port=server.port) as client:
            for name in names:
                client.get_record_bytes(name, n_groups)
            for group in range(1, n_groups):
                for name in names:
                    client.get_record_bytes(name, group)
            stats = client.stat()
    cache = stats["cache"]
    lower_requests = len(names) * (n_groups - 1)
    return {
        "populate_group": n_groups,
        "lower_group_requests": lower_requests,
        "prefix_hits": cache["prefix_hits"],
        "prefix_hit_rate": cache["prefix_hit_rate"],
        "hit_rate": cache["hit_rate"],
        "misses": cache["misses"],
        "hits_by_group": cache["hits_by_group"],
        "bytes_served_by_group": cache["bytes_served_by_group"],
    }


def _bench_pipelined_batch(
    directory: Path,
    names: list[str],
    n_groups: int,
    trials: int,
    batch_sizes: tuple[int, ...] = (4, 16, 64),
) -> dict:
    """Batch-vs-sequential at several batch sizes; trials are interleaved
    (batch, then sequential, repeat) so scheduler noise hits both sides
    equally and best-of-N compares like with like."""
    out: dict[str, dict] = {}
    with PCRRecordServer(directory, port=0) as server:
        with PCRClient(port=server.port) as client:
            for size in batch_sizes:
                requests = [(names[i % len(names)], n_groups) for i in range(size)]
                blobs = client.get_record_batch(requests)  # warm the cache
                total_bytes = sum(len(blob) for blob in blobs)
                batch_best = single_best = float("inf")
                for _ in range(trials):
                    start = time.perf_counter()
                    client.get_record_batch(requests)
                    batch_best = min(batch_best, time.perf_counter() - start)
                    start = time.perf_counter()
                    for name, group in requests:
                        client.get_record_bytes(name, group)
                    single_best = min(single_best, time.perf_counter() - start)
                out[str(size)] = {
                    "batch_size": size,
                    "batch_bytes": total_bytes,
                    "batch_mb_per_s": total_bytes / _MB / batch_best,
                    "sequential_mb_per_s": total_bytes / _MB / single_best,
                    "speedup_vs_sequential": single_best / batch_best,
                }
    return out


# Aggregate MB/s the pre-event-loop *threaded* server sustained with 4
# concurrent clients (the last BENCH_serving.json before the rewrite) —
# kept as the fixed reference the connection storm must beat.
_THREADED_4CLIENT_BASELINE_MB_S = 124.21506243256005


class _StormConnection:
    """One socket of the high-connection-count load generator."""

    __slots__ = ("sock", "assembler", "request", "to_send", "n_done", "payload_bytes")

    def __init__(self, sock, request: bytes, max_payload: int) -> None:
        self.sock = sock
        self.assembler = protocol.FrameAssembler(max_payload)
        self.request = request
        self.to_send = memoryview(request)
        self.n_done = 0
        self.payload_bytes = 0


def _bench_high_connection_count(
    directory: Path,
    names: list[str],
    n_groups: int,
    connection_counts: tuple[int, ...],
    requests_per_connection: int,
) -> dict:
    """Drive N concurrent sockets against one replica with a selector loop.

    Every connection is open for the whole sweep (peak concurrency == N)
    and plays ping-pong: send one ``GET_RECORD``, read the response, send
    the next, ``requests_per_connection`` times.  The driver itself is an
    event loop, so client-side threads never cap the fan-out.
    """
    out: dict[str, dict] = {}
    for n_connections in connection_counts:
        with PCRRecordServer(directory, port=0) as server:
            # Warm the cache so the sweep measures the serving front end,
            # not first-touch disk reads.
            with PCRClient(port=server.port) as warm:
                for name in names:
                    warm.get_record_bytes(name, n_groups)
            sel = selectors.DefaultSelector()
            conns: list[_StormConnection] = []
            try:
                for index in range(n_connections):
                    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    sock.setblocking(False)
                    sock.connect_ex(("127.0.0.1", server.port))
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    request = protocol.encode_frame(
                        protocol.MSG_GET_RECORD,
                        protocol.pack_record_request(
                            protocol.RecordRequest(
                                names[index % len(names)],
                                1 + (index % n_groups),
                            )
                        ),
                    )
                    conn = _StormConnection(
                        sock, request, protocol.DEFAULT_MAX_PAYLOAD_BYTES
                    )
                    conns.append(conn)
                    sel.register(sock, selectors.EVENT_WRITE, conn)
                n_remaining = n_connections
                start = time.perf_counter()
                while n_remaining:
                    ready = sel.select(timeout=30.0)
                    if not ready:
                        raise RuntimeError(
                            f"connection storm stalled with {n_remaining} "
                            "sockets outstanding"
                        )
                    for key, mask in ready:
                        conn = key.data
                        if mask & selectors.EVENT_WRITE:
                            try:
                                n = conn.sock.send(conn.to_send)
                            except (BlockingIOError, InterruptedError):
                                continue
                            conn.to_send = conn.to_send[n:]
                            if not len(conn.to_send):
                                sel.modify(conn.sock, selectors.EVENT_READ, conn)
                            continue
                        try:
                            data = conn.sock.recv(256 * 1024)
                        except (BlockingIOError, InterruptedError):
                            continue
                        if not data:
                            raise RuntimeError("server closed a storm connection")
                        for msg_type, payload in conn.assembler.feed(data):
                            if msg_type != protocol.MSG_RECORD_DATA:
                                raise RuntimeError(
                                    f"storm got response type 0x{msg_type:02x}"
                                )
                            conn.payload_bytes += len(payload)
                            conn.n_done += 1
                            if conn.n_done == requests_per_connection:
                                sel.unregister(conn.sock)
                                conn.sock.close()
                                n_remaining -= 1
                            else:
                                conn.to_send = memoryview(conn.request)
                                sel.modify(conn.sock, selectors.EVENT_WRITE, conn)
                elapsed = time.perf_counter() - start
                stats = server.stats()
            finally:
                for conn in conns:
                    if conn.n_done < requests_per_connection:
                        try:
                            sel.unregister(conn.sock)
                        except (KeyError, ValueError):
                            pass
                        conn.sock.close()
                sel.close()
        total_requests = sum(conn.n_done for conn in conns)
        total_bytes = sum(conn.payload_bytes for conn in conns)
        out[str(n_connections)] = {
            "n_connections": n_connections,
            "requests_per_connection": requests_per_connection,
            "total_requests": total_requests,
            "aggregate_mb_per_s": total_bytes / _MB / elapsed,
            "aggregate_requests_per_s": total_requests / elapsed,
            "elapsed_seconds": elapsed,
            "server_accepted_connections": stats["event_loop"]["accepted_connections"],
            "server_errors": stats["errors"],
            "cache_hit_rate": stats["cache"]["hit_rate"],
        }
    out["threaded_4client_baseline_mb_per_s"] = _THREADED_4CLIENT_BASELINE_MB_S
    return out


def _bench_multi_client(
    directory: Path, names: list[str], n_groups: int, n_clients: int, epochs: int
) -> dict:
    groups = _probe_groups(n_groups)
    with PCRRecordServer(directory, port=0) as server:
        fetched_bytes = [0] * n_clients
        errors: list[BaseException] = []

        def run_client(slot: int) -> None:
            try:
                with PCRClient(port=server.port, pool_size=2) as client:
                    group = groups[slot % len(groups)]
                    for _ in range(epochs):
                        fetched_bytes[slot] += _fetch_epoch(client, names, group)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(i,)) for i in range(n_clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        stats = server.stats()
    total = sum(fetched_bytes)
    return {
        "n_clients": n_clients,
        "epochs_per_client": epochs,
        "aggregate_mb_per_s": total / _MB / elapsed,
        "aggregate_records_per_s": n_clients * epochs * len(names) / elapsed,
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "cache_prefix_hit_rate": stats["cache"]["prefix_hit_rate"],
        "server_errors": stats["errors"],
    }


def _bench_obs_overhead(
    directory: Path,
    names: list[str],
    n_groups: int,
    trials: int,
    epochs_per_sample: int = 10,
    repeats: int = 3,
) -> dict:
    """Warm-cache fetch throughput with the metrics registry on vs off.

    One live server is driven by one client while the server's registry is
    toggled between paired multi-epoch samples, so both sides share the
    same sockets, cache, and threads and the delta isolates what always-on
    serving metrics (request/byte/cache counters, loop-iteration histogram)
    cost per request.

    Localhost round trips of a few hundred microseconds sit well inside
    scheduler noise, so the estimator is chosen for robustness: each repeat
    takes the *median* over ``trials`` interleaved on/off samples (each
    ``epochs_per_sample`` epochs long), and the reported overhead is the
    minimum over ``repeats`` — the repeat least polluted by background
    load.  A real regression shifts every repeat; a noise burst only some.
    """
    per_repeat: list[dict] = []
    with PCRRecordServer(directory, port=0) as server:
        with PCRClient(port=server.port) as client:
            registry = server.registry
            epoch_bytes = _fetch_epoch(client, names, n_groups)  # warm
            for _ in range(2):
                _fetch_epoch(client, names, n_groups)
            for _ in range(repeats):
                on_times: list[float] = []
                off_times: list[float] = []
                for _ in range(max(trials, 8)):
                    for enabled, bucket in ((True, on_times), (False, off_times)):
                        registry.set_enabled(enabled)
                        start = time.perf_counter()
                        for _ in range(epochs_per_sample):
                            _fetch_epoch(client, names, n_groups)
                        bucket.append(time.perf_counter() - start)
                registry.set_enabled(True)
                on_median = statistics.median(on_times)
                off_median = statistics.median(off_times)
                sample_bytes = epoch_bytes * epochs_per_sample
                per_repeat.append(
                    {
                        "instrumented_mb_per_s": sample_bytes / _MB / on_median,
                        "uninstrumented_mb_per_s": sample_bytes / _MB / off_median,
                        "overhead_pct": round(
                            100.0 * (on_median - off_median) / off_median, 2
                        ),
                    }
                )
    best = min(per_repeat, key=lambda row: row["overhead_pct"])
    return {
        "instrumented_mb_per_s": best["instrumented_mb_per_s"],
        "uninstrumented_mb_per_s": best["uninstrumented_mb_per_s"],
        "overhead_pct": best["overhead_pct"],
        "repeat_overheads_pct": [row["overhead_pct"] for row in per_repeat],
    }


def _bench_remote_loader(directory: Path, n_groups: int, batch_size: int) -> dict:
    out: dict[str, dict] = {}
    with PCRRecordServer(directory, port=0) as server:
        with RemoteRecordSource(port=server.port) as source:
            config = LoaderConfig(batch_size=batch_size, n_workers=2, shuffle=False, seed=0)
            for group in (1, n_groups):
                source.set_scan_group(group)
                loader = DataLoader(source, config)
                start = time.perf_counter()
                n_samples = sum(len(batch) for batch in loader.epoch())
                elapsed = time.perf_counter() - start
                out[str(group)] = {
                    "samples_per_s": n_samples / elapsed,
                    "epoch_seconds": elapsed,
                    "epoch_bytes": source.epoch_bytes(),
                }
    return out


def run_benchmark(
    n_samples: int = 96,
    image_size: int = 64,
    images_per_record: int = 16,
    trials: int = 3,
    n_clients: int = 4,
    multi_client_epochs: int = 3,
    batch_trials: int = 25,
    batch_sizes: tuple[int, ...] = (4, 16, 64),
    connection_counts: tuple[int, ...] = (64, 256, 1024),
    storm_requests: int = 8,
) -> dict:
    with tempfile.TemporaryDirectory(prefix="pcr-serving-bench-") as workdir:
        dataset = _build_dataset(workdir, n_samples, image_size, images_per_record)
        directory = dataset.reader.directory
        names = dataset.record_names
        n_groups = dataset.n_groups
        results = {
            "params": {
                "n_samples": n_samples,
                "image_size": image_size,
                "images_per_record": images_per_record,
                "n_records": len(names),
                "n_groups": n_groups,
                "trials": trials,
                "batch_trials": batch_trials,
            },
            "single_client_by_group": _bench_single_client(directory, names, n_groups, trials),
            "prefix_containment": _bench_prefix_containment(directory, names, n_groups),
            "pipelined_batch": _bench_pipelined_batch(
                directory, names, n_groups, batch_trials, batch_sizes
            ),
            "multi_client": _bench_multi_client(
                directory, names, n_groups, n_clients, multi_client_epochs
            ),
            "high_connection_count": _bench_high_connection_count(
                directory, names, n_groups, connection_counts, storm_requests
            ),
            "remote_loader_by_group": _bench_remote_loader(
                directory, n_groups, batch_size=16
            ),
            "obs_overhead": _bench_obs_overhead(
                directory, names, n_groups, trials=max(trials * 4, 12)
            ),
        }
        dataset.close()
    return results


def print_report(results: dict) -> None:
    print("=" * 74)
    print("PCR record serving benchmark")
    print("=" * 74)
    params = results["params"]
    print(
        f"{params['n_records']} records, {params['n_samples']} samples, "
        f"{params['n_groups']} scan groups"
    )
    print("-" * 74)
    print("single client, per scan group (cold = cache miss, warm = cache hit):")
    for group, row in results["single_client_by_group"].items():
        print(
            f"  group {group:>2s}  cold {row['cold_mb_per_s']:8.2f} MB/s   "
            f"warm {row['warm_mb_per_s']:8.2f} MB/s   "
            f"{row['warm_records_per_s']:8.1f} rec/s"
        )
    containment = results["prefix_containment"]
    print(
        f"prefix containment: {containment['prefix_hits']}/"
        f"{containment['lower_group_requests']} lower-group requests served by "
        f"slicing cached prefixes (prefix hit rate {containment['prefix_hit_rate']:.2f})"
    )
    print("pipelined batch vs sequential, per batch size:")
    for size, row in results["pipelined_batch"].items():
        print(
            f"  batch {size:>3s}  {row['batch_mb_per_s']:8.2f} MB/s vs "
            f"{row['sequential_mb_per_s']:8.2f} MB/s sequential "
            f"({row['speedup_vs_sequential']:.2f}x)"
        )
    multi = results["multi_client"]
    print(
        f"multi-client:       {multi['n_clients']} clients  "
        f"{multi['aggregate_mb_per_s']:8.2f} MB/s aggregate   "
        f"hit rate {multi['cache_hit_rate']:.2f}"
    )
    print("connection storm (concurrent sockets against one replica):")
    for count, row in results["high_connection_count"].items():
        if not isinstance(row, dict):
            continue  # the threaded-baseline scalar, not a sweep row
        print(
            f"  {count:>5s} conns  {row['aggregate_mb_per_s']:8.2f} MB/s   "
            f"{row['aggregate_requests_per_s']:8.1f} req/s   "
            f"{row['total_requests']} requests in {row['elapsed_seconds']:.2f}s"
        )
    print("remote DataLoader epoch:")
    for group, row in results["remote_loader_by_group"].items():
        print(
            f"  group {group:>2s}  {row['samples_per_s']:8.1f} samples/s   "
            f"epoch {row['epoch_seconds']:.2f}s   {row['epoch_bytes']} bytes"
        )
    if "obs_overhead" in results:
        row = results["obs_overhead"]
        print(
            f"observability overhead (server metrics on vs off): "
            f"{row['instrumented_mb_per_s']:.2f} vs "
            f"{row['uninstrumented_mb_per_s']:.2f} MB/s "
            f"({row['overhead_pct']:+.2f}%)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload, fewer trials")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        results = run_benchmark(
            n_samples=24, image_size=32, images_per_record=8, trials=2,
            n_clients=2, multi_client_epochs=2,
            batch_trials=6, batch_sizes=(4, 16),
            connection_counts=(16, 64), storm_requests=2,
        )
    else:
        results = run_benchmark()
    print_report(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


def test_serving_bench_smoke():
    """Tier-2 smoke: the scan-prefix cache must produce containment hits."""
    results = run_benchmark(
        n_samples=16, image_size=32, images_per_record=8, trials=1,
        n_clients=2, multi_client_epochs=1,
        batch_trials=2, batch_sizes=(4, 16),
        connection_counts=(32,), storm_requests=2,
    )
    containment = results["prefix_containment"]
    assert containment["prefix_hit_rate"] > 0
    assert containment["prefix_hits"] == containment["lower_group_requests"]
    for row in results["single_client_by_group"].values():
        assert row["warm_mb_per_s"] >= row["cold_mb_per_s"] * 0.2
    # Structural checks only for the timing-sensitive sections — CI boxes
    # are too noisy for throughput-ratio assertions at smoke scale.
    for size, row in results["pipelined_batch"].items():
        assert row["batch_size"] == int(size)
        assert row["speedup_vs_sequential"] > 0
    storm = results["high_connection_count"]["32"]
    assert storm["total_requests"] == 32 * 2
    assert storm["server_errors"] == 0
    assert storm["server_accepted_connections"] >= 32
    print_report(results)


def test_serving_obs_overhead_smoke():
    """Tier-2 smoke: an instrumented server serves within 3% of a bare one."""
    with tempfile.TemporaryDirectory(prefix="pcr-obs-bench-") as workdir:
        dataset = _build_dataset(workdir, n_samples=24, image_size=32, per_record=8)
        directory = dataset.reader.directory
        names = dataset.record_names
        n_groups = dataset.n_groups
        row = _bench_obs_overhead(directory, names, n_groups, trials=12)
        if row["overhead_pct"] > 3.0:
            # One honest re-measure before failing: a single noisy window on
            # a loaded CI runner must not fail the gate, a regression will.
            row = _bench_obs_overhead(directory, names, n_groups, trials=16, repeats=4)
        dataset.close()
    assert row["overhead_pct"] <= 3.0, row


if __name__ == "__main__":
    sys.exit(main())
