"""Table 1 — dataset and record statistics.

Prints the reproduction datasets' record counts, image counts, sizes, JPEG
quality, and class counts alongside the paper's published values.
"""

from __future__ import annotations

from benchmarks.conftest import print_header
from repro.datasets.registry import PAPER_DATASET_STATISTICS


def test_table1_dataset_statistics(benchmark, bench_datasets):
    def collect():
        rows = []
        for name, (dataset, spec) in bench_datasets.items():
            total_bytes = sum(
                dataset.reader.record_index(record).total_bytes
                for record in dataset.record_names
            )
            rows.append(
                {
                    "dataset": spec.paper_name,
                    "records": len(dataset.record_names),
                    "images": len(dataset),
                    "bytes": total_bytes,
                    "jpeg_quality": spec.jpeg_quality,
                    "classes": spec.n_classes,
                }
            )
        return rows

    rows = benchmark(collect)

    print_header("Table 1: PCR dataset size and record count information")
    print(f"{'dataset':<16}{'records':>9}{'images':>9}{'size (KiB)':>12}{'quality':>9}{'classes':>9}")
    for row in rows:
        print(
            f"{row['dataset']:<16}{row['records']:>9}{row['images']:>9}"
            f"{row['bytes'] / 1024:>12.1f}{row['jpeg_quality']:>9}{row['classes']:>9}"
        )
    print("\nPaper (full-scale) reference values:")
    print(f"{'dataset':<16}{'records':>9}{'images':>10}{'size':>10}{'quality':>9}{'classes':>9}")
    for name, stats in PAPER_DATASET_STATISTICS.items():
        print(
            f"{name:<16}{stats['record_count']:>9}{stats['image_count']:>10}"
            f"{stats['dataset_size']:>10}{stats['jpeg_quality']:>9}{stats['classes']:>9}"
        )

    assert all(row["records"] >= 1 and row["images"] > 0 for row in rows)
