"""§A.5 — decoding overhead of progressive vs baseline streams.

The paper measures a 40-50% CPU overhead for decoding 10-scan progressive
JPEGs vs baseline JPEGs; this benchmark measures the same ratio for the PCR
codec (the absolute rates differ — this is a pure-Python codec — but the
relative overhead is the quantity of interest).
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header
from repro.codecs.baseline import BaselineCodec
from repro.codecs.progressive import ProgressiveCodec
from repro.datasets.synthetic import SyntheticImageGenerator, SyntheticImageSpec

N_IMAGES = 8
REPEATS = 3


def _throughput(codec, streams):
    start = time.perf_counter()
    for _ in range(REPEATS):
        for stream in streams:
            codec.decode(stream)
    elapsed = time.perf_counter() - start
    return REPEATS * len(streams) / elapsed


def test_a5_decode_overhead(benchmark):
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=48), seed=1
    )
    images = [generator.generate(i % 4, sample_seed=i) for i in range(N_IMAGES)]
    baseline_codec = BaselineCodec(quality=90)
    progressive_codec = ProgressiveCodec(quality=90)
    baseline_streams = [baseline_codec.encode(image) for image in images]
    progressive_streams = [progressive_codec.encode(image) for image in images]

    def run():
        return (
            _throughput(baseline_codec, baseline_streams),
            _throughput(progressive_codec, progressive_streams),
        )

    baseline_rate, progressive_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = baseline_rate / progressive_rate - 1.0

    print_header("§A.5: decode throughput, baseline vs 10-scan progressive")
    print(f"baseline:    {baseline_rate:8.1f} images/s")
    print(f"progressive: {progressive_rate:8.1f} images/s")
    print(f"overhead:    {overhead * 100:5.1f}%  (paper: 40-50% with libjpeg/PIL/OpenCV)")

    # Progressive decoding is not dramatically more expensive; the pure-Python
    # codec's per-scan bookkeeping keeps it within ~3x of the baseline decoder
    # (libjpeg's measured overhead is 40-50%).
    assert -0.2 < overhead < 3.0


def test_a5_partial_decode_is_cheaper(benchmark):
    generator = SyntheticImageGenerator(
        n_classes=4, spec=SyntheticImageSpec(image_size=48), seed=2
    )
    codec = ProgressiveCodec(quality=90)
    streams = [codec.encode(generator.generate(i % 4, sample_seed=i)) for i in range(N_IMAGES)]

    def decode_scan1():
        for stream in streams:
            codec.decode(stream, max_scans=1)

    benchmark(decode_scan1)
    # Sanity: a scan-1 decode touches far fewer coefficients than a full decode.
    start = time.perf_counter()
    for stream in streams:
        codec.decode(stream, max_scans=1)
    partial_time = time.perf_counter() - start
    start = time.perf_counter()
    for stream in streams:
        codec.decode(stream)
    full_time = time.perf_counter() - start
    assert partial_time < full_time
