"""Figure 31 — per-scan encoded sizes and reconstruction quality for one image
per dataset (the byte-size annotations under the example images)."""

from __future__ import annotations

from benchmarks.conftest import print_header
from repro.codecs.progressive import ProgressiveCodec, split_scans
from repro.metrics.msssim import ms_ssim
from repro.metrics.psnr import psnr


def test_fig31_per_scan_example_sizes(benchmark, bench_datasets):
    def run():
        per_dataset = {}
        for name, (dataset, spec) in bench_datasets.items():
            dataset.set_scan_group(dataset.n_groups)
            stream = next(iter(dataset)).stream
            codec = ProgressiveCodec(quality=spec.jpeg_quality)
            _, scans = split_scans(stream)
            full = codec.decode(stream)
            cumulative = []
            running = 0
            for index in range(len(scans)):
                running += len(scans[index])
                partial = codec.decode(stream, max_scans=index + 1)
                cumulative.append(
                    (running, ms_ssim(full, partial), psnr(full, partial))
                )
            per_dataset[name] = cumulative
        return per_dataset

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 31: cumulative size / quality of one example image per dataset")
    for name, rows in results.items():
        print(f"\n{name}:")
        print(f"{'scan':>5}{'cumulative KiB':>16}{'MSSIM':>9}{'PSNR (dB)':>11}")
        for index, (size, mssim, quality) in enumerate(rows, start=1):
            quality_text = f"{quality:.1f}" if quality != float("inf") else "inf"
            print(f"{index:>5}{size / 1024:>16.2f}{mssim:>9.3f}{quality_text:>11}")

    for name, rows in results.items():
        sizes = [size for size, _, _ in rows]
        mssims = [mssim for _, mssim, _ in rows]
        assert sizes == sorted(sizes), name
        assert mssims[-1] > 0.999, name
        # Diminishing returns: early scans contribute most of the quality.
        assert mssims[4] - mssims[0] > (mssims[-1] - mssims[4]) - 0.05, name
