"""Close the autotune loop: a controller steers training fidelity live.

Builds a small synthetic PCR dataset, launches a 2-shard x 2-replica
serving cluster, attaches a fleet-wide :class:`FidelityController`, and
drives a training loop through an :class:`AdaptiveScanGroupSource` behind
a bandwidth-capped link.  The loader reports its stall telemetry over the
wire (the ``REPORT_TELEMETRY`` op); the controller answers with scan-group
hints the source applies automatically.  Mid-run the link cap is lifted
and the controller steers fidelity back up.  The decision log — every
steer with its rationale — is printed at the end.

Run with:  PYTHONPATH=src python examples/adaptive_serving.py
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace

from repro.control import AdaptiveScanGroupSource, StallTargetPolicy
from repro.core import PCRDataset
from repro.datasets import HAM10000_SPEC, generate_dataset
from repro.pipeline import BandwidthThrottle, DataLoader, LoaderConfig
from repro.serving.cluster import ClusterCoordinator, ShardedRemoteRecordSource
from repro.training import SGD, Trainer, TinyShuffleNet

N_INTERVALS = 10
UNCAP_AT_INTERVAL = 6
COMPUTE_SECONDS_PER_BATCH = 0.05


def main() -> None:
    spec = replace(HAM10000_SPEC, n_samples=48, image_size=40, images_per_record=8)
    workdir = tempfile.mkdtemp(prefix="pcr-adaptive-")
    print("Building a HAM10000-like PCR dataset ...")
    dataset = PCRDataset.build(
        generate_dataset(spec, seed=1),
        workdir,
        images_per_record=spec.images_per_record,
        quality=spec.jpeg_quality,
    )
    dataset.close()

    with ClusterCoordinator(workdir, n_shards=2, n_replicas=2) as cluster:
        print(f"Cluster up: {cluster.shard_map.n_shards} shards x 2 replicas")
        controller = cluster.start_controller(
            policy=StallTargetPolicy(
                target_stall_fraction=0.2, hysteresis=0.5, cooldown_intervals=0
            ),
            auto_start=False,  # stepped explicitly so the demo is deterministic
        )
        throttle = BandwidthThrottle(None)
        with AdaptiveScanGroupSource(
            ShardedRemoteRecordSource(shard_map=cluster.shard_map),
            client_id="trainer-0",
            report_interval=3600.0,  # report at interval boundaries only
            throttle=throttle,
        ) as source:
            loader = DataLoader(source, LoaderConfig(batch_size=8, n_workers=1, seed=0))
            model = TinyShuffleNet(n_classes=spec.n_classes, width=8)
            trainer = Trainer(model, SGD(learning_rate=0.05, momentum=0.9))

            batches = max(1, len(source) // 8)
            compute_budget = batches * COMPUTE_SECONDS_PER_BATCH
            # A link where a full-fidelity epoch costs 4x the compute budget.
            capped = source.epoch_bytes() / (4 * compute_budget)
            throttle.set_rate(capped)
            print(f"Link capped at {capped / 1024:.0f} KiB/s; "
                  f"controller target stall fraction 0.20\n")

            for interval in range(N_INTERVALS):
                if interval == UNCAP_AT_INTERVAL:
                    throttle.set_rate(None)
                    print("    -> link cap lifted; the controller steers back up")
                stalls = loader.stalls
                wait0, compute0 = stalls.total_wait, stalls.total_compute
                for batch in loader.epoch():
                    trainer.train_step(batch)
                    time.sleep(COMPUTE_SECONDS_PER_BATCH)
                source.report_now()
                controller.step()
                source.report_now()  # pick up the hint this step published
                wait = stalls.total_wait - wait0
                compute = stalls.total_compute - compute0
                stall = wait / (wait + compute) if wait + compute else 0.0
                print(f"  interval {interval}: scan group {source.scan_group:2d}  "
                      f"stall {stall:.2f}")

            print("\nController decision log (steers only):")
            for entry in controller.switch_log():
                print(f"  interval {entry['interval']:2d}: "
                      f"{entry['previous_group']} -> {entry['chosen_group']} "
                      f"({entry['direction']}) because {entry['reason']}")
            fleet = controller.last_fleet_snapshot or {}
            counters = fleet.get("counters", {})
            print(f"\nFleet telemetry: "
                  f"{counters.get('serving.telemetry.reports_total', 0):.0f} reports, "
                  f"{counters.get('serving.telemetry.hints_served_total', 0):.0f} hints served "
                  f"across {cluster.cluster_stats()['live_replicas']} replicas")


if __name__ == "__main__":
    main()
