"""Train a small model on a PCR dataset with dynamic scan-group autotuning.

Reproduces the Section 4.5 workflow at laptop scale: training starts at full
quality, and every few epochs the gradient-cosine controller probes the scan
groups and drops to the cheapest one whose gradient still points the right way.

Run with:  python examples/train_with_dynamic_tuning.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro.core import PCRDataset
from repro.datasets import HAM10000_SPEC, generate_dataset
from repro.pipeline import DataLoader, LoaderConfig
from repro.training import SGD, Trainer, TinyShuffleNet
from repro.tuning import GradientCosineController

N_EPOCHS = 6
TUNE_EVERY = 2


def main() -> None:
    spec = replace(HAM10000_SPEC, n_samples=64, image_size=40, images_per_record=16)
    workdir = tempfile.mkdtemp(prefix="pcr-dynamic-")
    print("Building a HAM10000-like PCR dataset ...")
    dataset = PCRDataset.build(
        generate_dataset(spec, seed=1),
        workdir,
        images_per_record=spec.images_per_record,
        quality=spec.jpeg_quality,
    )

    loader = DataLoader(dataset, LoaderConfig(batch_size=16, n_workers=2, seed=0))
    model = TinyShuffleNet(n_classes=spec.n_classes, width=8)
    trainer = Trainer(model, SGD(learning_rate=0.05, momentum=0.9))
    controller = GradientCosineController(
        candidate_groups=[1, 2, 5, 10], similarity_threshold=0.9, max_samples=32
    )

    print(f"\nTraining {N_EPOCHS} epochs with autotuning every {TUNE_EVERY} epochs:")
    for epoch in range(N_EPOCHS):
        result = trainer.train_epoch(loader, scan_group=dataset.scan_group)
        print(
            f"  epoch {epoch}: scan group {dataset.scan_group:>2}  "
            f"loss {result.train_loss:.3f}  acc {result.train_accuracy:.2f}  "
            f"epoch bytes {dataset.epoch_bytes():>8}"
        )
        if (epoch + 1) % TUNE_EVERY == 0:
            decision = controller.tune(trainer, dataset, epoch)
            similarities = ", ".join(
                f"g{g}={v:.2f}" for g, v in sorted(decision.probe_metrics.items())
            )
            print(f"    autotune: gradient cosine [{similarities}] -> scan group {decision.chosen_group}")

    final_accuracy = trainer.evaluate(loader)
    print(f"\nFinal training-set accuracy: {final_accuracy:.2f}")
    print(f"Final scan group: {dataset.scan_group} "
          f"(baseline would read {dataset.reader.dataset_bytes_for_group(dataset.n_groups)} bytes/epoch, "
          f"chosen group reads {dataset.epoch_bytes()})")


if __name__ == "__main__":
    main()
