"""Convert an existing file-per-image dataset into PCR records.

Mirrors the paper's deployment story: you already have a directory of encoded
images (ImageFolder style); one lossless pass produces a PCR dataset that
serves every quality level from a single copy, and this script compares the
cost against re-encoding static copies at several qualities (§A.4, Figure 15).

Run with:  python examples/convert_existing_dataset.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.codecs import BaselineCodec
from repro.core import PCRDataset
from repro.core.convert import build_static_copies, convert_to_pcr
from repro.datasets import CARS_SPEC, generate_dataset
from repro.records import FilePerImageDataset, FilePerImageWriter


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="pcr-convert-"))
    spec = replace(CARS_SPEC, n_samples=48, image_size=48, n_classes=12)

    # Step 1: materialize a "pre-existing" file-per-image dataset.
    print(f"Creating a file-per-image source dataset under {root / 'source'} ...")
    source_writer = FilePerImageWriter(root / "source", quality=spec.jpeg_quality)
    source_writer.write_dataset(generate_dataset(spec, seed=2))
    source = FilePerImageDataset(root / "source")
    print(f"  {len(source)} images, {source.total_bytes()} bytes")

    # Step 2: convert it (decode + lossless transcode + regroup) into PCRs.
    # The samples are a *generator*: convert_to_pcr pulls them in bounded
    # chunks (chunk_size images at a time, batch-encoded on the fused
    # float32 forward path), so peak memory follows the chunk size even for
    # datasets that never fit in RAM.  encode_workers=2 runs the encode
    # stage on an EncodePool worker fleet — a real speedup on multi-core
    # machines, engine overhead on a single core.
    codec = BaselineCodec(quality=spec.jpeg_quality)
    samples = (
        (item.key, codec.decode(item.read_bytes()), item.label) for item in source
    )
    result, pcr_report = convert_to_pcr(
        samples,
        root / "pcr",
        images_per_record=16,
        quality=spec.jpeg_quality,
        chunk_size=16,
        encode_workers=2,
    )
    print(f"\nPCR conversion: {result.n_records} records, {result.total_bytes} bytes")
    print(
        f"  {pcr_report.n_images} images in {pcr_report.n_chunks} chunks of "
        f"<= {pcr_report.chunk_size} ({pcr_report.encode_workers} encode worker(s)): "
        f"encode {pcr_report.jpeg_conversion_seconds:.2f} s + "
        f"records {pcr_report.record_creation_seconds:.2f} s = "
        f"{pcr_report.total_seconds:.2f} s "
        f"({pcr_report.images_per_second:.1f} images/s)"
    )

    # Step 3: compare against static multi-quality copies (same streaming
    # converter, one pull of the dataset however many qualities are built).
    samples = [
        (item.key, codec.decode(item.read_bytes()), item.label) for item in source
    ]
    static_report = build_static_copies(
        samples, root / "static", qualities=(50, 75, 90, 95), chunk_size=16
    )
    print(
        f"Static copies at 4 qualities: {static_report.output_bytes} bytes, "
        f"{static_report.total_seconds:.2f} s "
        f"({static_report.images_per_second:.1f} images/s, "
        f"{static_report.output_bytes / result.total_bytes:.1f}x the PCR footprint)"
    )

    # Step 4: use the converted dataset at two different qualities.
    dataset = PCRDataset(root / "pcr")
    dataset.set_scan_group(2)
    preview = next(iter(dataset))
    print(f"\nReading back sample {preview.key!r} at scan group 2: "
          f"{preview.image.width}x{preview.image.height}, label {preview.label}")
    print(f"Epoch bytes at group 2 vs baseline: {dataset.epoch_bytes()} vs "
          f"{dataset.reader.dataset_bytes_for_group(dataset.n_groups)}")


if __name__ == "__main__":
    main()
