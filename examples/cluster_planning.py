"""Plan a training cluster's scan-group choice with the queueing/roofline model.

Given a storage bandwidth budget and a model's compute rate, this example
shows which scan group saturates compute, the predicted epoch times, and the
expected time-to-accuracy speedups — the Appendix A.2 analysis applied to the
paper's published cluster (10 workers, 400 MiB/s of storage).

Run with:  python examples/cluster_planning.py
"""

from __future__ import annotations

from repro.simulate import ClusterSpec, RooflineModel, TrainingSimulator

MiB = 1024 * 1024

#: Mean ImageNet image bytes at each scan group (measured ratios from the PCR
#: codec applied to the paper's 110 kB full-quality mean).
IMAGENET_GROUP_BYTES = {1: 13_000, 2: 22_000, 5: 52_000, 10: 110_000}
FINAL_ACCURACY = {1: 0.55, 2: 0.63, 5: 0.665, 10: 0.67}


def main() -> None:
    for name, cluster in (
        ("ResNet-18", ClusterSpec.paper_resnet()),
        ("ShuffleNetv2", ClusterSpec.paper_shufflenet()),
    ):
        print(f"\n=== {name} on the paper's 10-worker cluster ===")
        roofline = RooflineModel(
            compute_images_per_second=cluster.compute_images_per_second,
            storage_bandwidth_bytes_per_second=cluster.storage_bandwidth_bytes_per_second,
        )
        print(f"compute roof: {cluster.compute_images_per_second:.0f} img/s, "
              f"storage: {cluster.storage_bandwidth_bytes_per_second / MiB:.0f} MiB/s, "
              f"ridge point: {roofline.ridge_point_bytes() / 1000:.0f} kB/image")

        simulator = TrainingSimulator(cluster, n_train_images=1_281_167, eval_every_epochs=5)
        speedups = simulator.speedup_table(IMAGENET_GROUP_BYTES)
        runs = simulator.compare_scan_groups(IMAGENET_GROUP_BYTES, FINAL_ACCURACY, n_epochs=90)

        print(f"{'group':>6}{'kB/img':>8}{'img/s':>9}{'epoch (min)':>13}{'speedup':>9}{'final acc':>11}")
        for group in sorted(IMAGENET_GROUP_BYTES):
            run = runs[group]
            print(
                f"{group:>6}{IMAGENET_GROUP_BYTES[group] / 1000:>8.0f}{run.images_per_second:>9.0f}"
                f"{run.epoch_seconds / 60:>13.1f}{speedups[group]:>9.2f}{run.final_accuracy:>11.3f}"
            )
        target = 0.6
        baseline = runs[10].time_to_accuracy(target)
        best_group = min(
            (g for g in runs if runs[g].time_to_accuracy(target) is not None),
            key=lambda g: runs[g].time_to_accuracy(target),
        )
        print(f"time to {target:.0%} top-1: baseline {baseline / 3600:.1f} h, "
              f"best group {best_group} -> {runs[best_group].time_to_accuracy(target) / 3600:.1f} h")


if __name__ == "__main__":
    main()
