"""Quickstart: build a PCR dataset, read it at several qualities, switch at runtime.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import PCRDataset
from repro.datasets import IMAGENET_SPEC, generate_dataset
from repro.metrics import ms_ssim
from repro.codecs import ProgressiveCodec


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pcr-quickstart-"))
    print(f"Building a small ImageNet-like PCR dataset in {workdir} ...")

    from dataclasses import replace

    spec = replace(IMAGENET_SPEC, n_samples=64, image_size=48, n_classes=8, images_per_record=16)
    dataset = PCRDataset.build(
        generate_dataset(spec, seed=0),
        workdir,
        images_per_record=spec.images_per_record,
        quality=spec.jpeg_quality,
    )
    print(f"  {len(dataset)} samples in {len(dataset.record_names)} records, "
          f"{dataset.n_groups} scan groups\n")

    print("Bytes one epoch reads at each scan group (the PCR partial-read knob):")
    for group, total in dataset.epoch_bytes_by_group().items():
        print(f"  scan group {group:>2}: {total:>8} bytes")

    codec = ProgressiveCodec(quality=spec.jpeg_quality)
    dataset.set_scan_group(dataset.n_groups)
    reference = next(iter(dataset))
    print("\nReconstruction quality (MSSIM vs full quality) for one sample:")
    for group in (1, 2, 5, 10):
        partial = codec.decode(reference.stream, max_scans=group)
        full = codec.decode(reference.stream)
        print(f"  scan group {group:>2}: MSSIM = {ms_ssim(full, partial):.3f}")

    print("\nSwitching quality at runtime is one call — no re-encoding, no copies:")
    dataset.set_scan_group(2)
    low_bytes = dataset.epoch_bytes()
    dataset.set_scan_group(10)
    full_bytes = dataset.epoch_bytes()
    print(f"  scan group 2 epoch = {low_bytes} bytes, "
          f"baseline epoch = {full_bytes} bytes "
          f"({full_bytes / low_bytes:.1f}x bandwidth saving)")


if __name__ == "__main__":
    main()
