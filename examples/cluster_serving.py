"""Serve a PCR dataset from a sharded, replicated cluster and train through it.

Builds a small synthetic PCR dataset, launches a 4-shard x 2-replica
serving cluster on localhost ports, and drives a training loop through
:class:`ShardedRemoteRecordSource` — the clustered twin of
``RemoteRecordSource``.  Mid-training, one replica of the busiest shard is
killed: the routing client fails over to the surviving replica and the
epoch completes without the training loop noticing.  The scan group is
also switched at runtime, cluster-wide, exactly as with a single server.

Run with:  PYTHONPATH=src python examples/cluster_serving.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro.core import PCRDataset
from repro.datasets import HAM10000_SPEC, generate_dataset
from repro.pipeline import DataLoader, LoaderConfig
from repro.serving.cluster import ClusterCoordinator, ShardedRemoteRecordSource
from repro.training import SGD, Trainer, TinyShuffleNet

N_EPOCHS = 4
KILL_AT_EPOCH = 1
SWITCH_AT_EPOCH = 2
LOW_FIDELITY_GROUP = 2


def main() -> None:
    spec = replace(HAM10000_SPEC, n_samples=64, image_size=40, images_per_record=8)
    workdir = tempfile.mkdtemp(prefix="pcr-cluster-")
    print("Building a HAM10000-like PCR dataset ...")
    dataset = PCRDataset.build(
        generate_dataset(spec, seed=1),
        workdir,
        images_per_record=spec.images_per_record,
        quality=spec.jpeg_quality,
    )
    dataset.close()

    with ClusterCoordinator(workdir, n_shards=4, n_replicas=2) as cluster:
        shard_map = cluster.shard_map
        print(f"Cluster up: {shard_map.n_shards} shards x 2 replicas")
        for shard_id in shard_map.shard_ids:
            ports = [replica.port for replica in shard_map.replicas(shard_id)]
            print(f"  {shard_id}: {len(cluster.assignment(shard_id)):2d} records on ports {ports}")

        with ShardedRemoteRecordSource(shard_map=shard_map) as source:
            loader = DataLoader(source, LoaderConfig(batch_size=16, n_workers=2, seed=0))
            model = TinyShuffleNet(n_classes=spec.n_classes, width=8)
            trainer = Trainer(model, SGD(learning_rate=0.05, momentum=0.9))

            busiest = max(shard_map.shard_ids, key=lambda s: len(cluster.assignment(s)))
            print(f"\nTraining {N_EPOCHS} epochs against the cluster:")
            for epoch in range(N_EPOCHS):
                if epoch == KILL_AT_EPOCH:
                    cluster.stop_replica(busiest, 0)
                    print(f"    -> killed {busiest}/replica-0; reads fail over to replica-1")
                if epoch == SWITCH_AT_EPOCH:
                    source.set_scan_group(LOW_FIDELITY_GROUP)
                    print(
                        f"    -> runtime switch to scan group {LOW_FIDELITY_GROUP} "
                        "(fewer bytes per record, cluster-wide)"
                    )
                result = trainer.train_epoch(loader, scan_group=source.scan_group)
                print(
                    f"  epoch {epoch}: scan group {source.scan_group:>2}  "
                    f"loss {result.train_loss:.3f}  acc {result.train_accuracy:.2f}  "
                    f"failovers so far {source.cluster_client.failovers}"
                )

            stats = source.cluster_stats()
            print(
                f"\nCluster after training: "
                f"{stats['client']['failovers']} client failovers "
                f"({stats['client']['failed_endpoints']})"
            )
            fleet = cluster.stats()
            print(
                f"Fleet: {fleet['cluster']['live_replicas']}/"
                f"{fleet['cluster']['total_replicas']} replicas live, "
                f"cache hit rate {fleet['cluster']['cache_hit_rate']:.2f}"
            )
            cluster.restart_replica(busiest, 0)
            print(f"Restarted {busiest}/replica-0 on its original port; cluster whole again.")


if __name__ == "__main__":
    main()
