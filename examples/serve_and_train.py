"""Serve a PCR dataset over TCP and train against it remotely.

Builds a small synthetic PCR dataset, starts a :class:`PCRRecordServer` on a
localhost port, and drives a training loop through
:class:`RemoteRecordSource` — the network twin of ``PCRDataset``.  Halfway
through, the scan group is switched at runtime: every subsequent fetch ships
fewer bytes over the wire, and the server's scan-prefix cache serves the
lower fidelity by slicing the full-fidelity prefixes it already holds
(prefix-containment hits — no storage I/O at all).

Run with:  PYTHONPATH=src python examples/serve_and_train.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

from repro.core import PCRDataset
from repro.datasets import HAM10000_SPEC, generate_dataset
from repro.pipeline import DataLoader, LoaderConfig
from repro.serving import PCRClient, PCRRecordServer, RemoteRecordSource
from repro.training import SGD, Trainer, TinyShuffleNet

N_EPOCHS = 4
SWITCH_AT_EPOCH = 2
LOW_FIDELITY_GROUP = 2


def main() -> None:
    spec = replace(HAM10000_SPEC, n_samples=64, image_size=40, images_per_record=16)
    workdir = tempfile.mkdtemp(prefix="pcr-serving-")
    print("Building a HAM10000-like PCR dataset ...")
    dataset = PCRDataset.build(
        generate_dataset(spec, seed=1),
        workdir,
        images_per_record=spec.images_per_record,
        quality=spec.jpeg_quality,
    )
    dataset.close()

    with PCRRecordServer(workdir, port=0) as server:
        print(f"Serving {workdir} on {server.host}:{server.port}")
        with RemoteRecordSource(port=server.port) as source:
            loader = DataLoader(source, LoaderConfig(batch_size=16, n_workers=2, seed=0))
            model = TinyShuffleNet(n_classes=spec.n_classes, width=8)
            trainer = Trainer(model, SGD(learning_rate=0.05, momentum=0.9))

            print(f"\nTraining {N_EPOCHS} epochs over the network:")
            for epoch in range(N_EPOCHS):
                if epoch == SWITCH_AT_EPOCH:
                    source.set_scan_group(LOW_FIDELITY_GROUP)
                    print(
                        f"    -> runtime switch to scan group {LOW_FIDELITY_GROUP} "
                        "(fewer bytes per record from here on)"
                    )
                result = trainer.train_epoch(loader, scan_group=source.scan_group)
                print(
                    f"  epoch {epoch}: scan group {source.scan_group:>2}  "
                    f"loss {result.train_loss:.3f}  acc {result.train_accuracy:.2f}  "
                    f"wire bytes/epoch {source.epoch_bytes():>8}"
                )

        with PCRClient(port=server.port) as client:
            cache = client.stat()["cache"]
        print(
            f"\nServer cache: {cache['exact_hits']} exact hits, "
            f"{cache['prefix_hits']} prefix-containment hits, "
            f"{cache['misses']} misses "
            f"(prefix hit rate {cache['prefix_hit_rate']:.2f})"
        )
        print(
            "Every low-fidelity epoch after the switch was served by slicing "
            "cached full-fidelity prefixes — no storage reads."
        )


if __name__ == "__main__":
    main()
